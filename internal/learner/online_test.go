package learner

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/sim"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// TestOnlineEqualsBatch: feeding periods incrementally produces the
// same hypothesis set as the batch Learn, for exact and bounded
// variants, on the paper example and random traces.
func TestOnlineEqualsBatch(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	traces := []*trace.Trace{trace.PaperFigure2()}
	for i := 0; i < 10; i++ {
		traces = append(traces, randomTrace(r, 3+r.Intn(3), 2+r.Intn(4), 3))
	}
	for ti, tr := range traces {
		for _, bound := range []int{0, 1, 4} {
			opt := Options{Bound: bound}
			batch, err := Learn(tr, opt)
			if err != nil {
				t.Fatalf("trace %d bound %d: batch: %v", ti, bound, err)
			}
			o, err := NewOnline(tr.Tasks, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range tr.Periods {
				if err := o.AddPeriod(p); err != nil {
					t.Fatalf("trace %d bound %d: online: %v", ti, bound, err)
				}
			}
			res, err := o.Result()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Hypotheses) != len(batch.Hypotheses) {
				t.Fatalf("trace %d bound %d: online %d vs batch %d hypotheses",
					ti, bound, len(res.Hypotheses), len(batch.Hypotheses))
			}
			for i := range res.Hypotheses {
				if !res.Hypotheses[i].Equal(batch.Hypotheses[i]) {
					t.Errorf("trace %d bound %d: hypothesis %d differs", ti, bound, i)
				}
			}
		}
	}
}

// TestOnlineIntermediateResults: results can be read out after every
// period; the set after the first period of the paper example is the
// paper's {d21, d22, d23}.
func TestOnlineIntermediateResults(t *testing.T) {
	tr := trace.PaperFigure2()
	o, err := NewOnline(tr.Tasks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddPeriod(tr.Periods[0]); err != nil {
		t.Fatal(err)
	}
	mid, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(mid.Hypotheses) != 3 {
		t.Fatalf("after period 1: %d hypotheses, want 3", len(mid.Hypotheses))
	}
	if !containsDep(mid.Hypotheses, paperD21) || !containsDep(mid.Hypotheses, paperD22) ||
		!containsDep(mid.Hypotheses, paperD23) {
		t.Error("intermediate set is not {d21, d22, d23}")
	}
	// Continue the session; the final result matches the paper.
	if err := o.AddPeriod(tr.Periods[1]); err != nil {
		t.Fatal(err)
	}
	if err := o.AddPeriod(tr.Periods[2]); err != nil {
		t.Fatal(err)
	}
	final, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Hypotheses) != 5 {
		t.Fatalf("final: %d hypotheses, want 5", len(final.Hypotheses))
	}
	if !final.LUB.Equal(paperDLUB) {
		t.Errorf("final LUB:\n%s", final.LUB.Table())
	}
}

// TestOnlineSnapshotIsolation: a snapshot taken mid-stream is not
// mutated by later periods.
func TestOnlineSnapshotIsolation(t *testing.T) {
	tr := trace.PaperFigure2()
	o, err := NewOnline(tr.Tasks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddPeriod(tr.Periods[0]); err != nil {
		t.Fatal(err)
	}
	mid, _ := o.Result()
	before := make([]string, len(mid.Hypotheses))
	for i, d := range mid.Hypotheses {
		before[i] = d.Key()
	}
	if err := o.AddPeriod(tr.Periods[1]); err != nil {
		t.Fatal(err)
	}
	for i, d := range mid.Hypotheses {
		if d.Key() != before[i] {
			t.Fatal("snapshot mutated by later AddPeriod")
		}
	}
}

// TestOnlineStickyError: once a period cannot be explained the session
// is dead and stays dead.
func TestOnlineStickyError(t *testing.T) {
	bad := trace.NewBuilder([]string{"a", "b"}).
		StartPeriod().Msg("m", 0, 1).Exec("a", 2, 3).Exec("b", 4, 5).
		MustBuild()
	good := trace.PaperFigure2()

	o, err := NewOnline([]string{"a", "b"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddPeriod(bad.Periods[0]); !errors.Is(err, ErrNoHypothesis) {
		t.Fatalf("err = %v, want ErrNoHypothesis", err)
	}
	if o.Err() == nil {
		t.Fatal("Err() not sticky")
	}
	if err := o.AddPeriod(good.Periods[0]); err == nil {
		t.Fatal("dead session accepted a period")
	}
	if _, err := o.Result(); err == nil {
		t.Fatal("dead session returned a result")
	}
}

func TestOnlineBadTaskSet(t *testing.T) {
	if _, err := NewOnline([]string{"a", "a"}, Options{}); err == nil {
		t.Fatal("duplicate task names accepted")
	}
}

func TestOnlineAccessors(t *testing.T) {
	tr := trace.PaperFigure2()
	o, err := NewOnline(tr.Tasks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if o.TaskSet().Len() != 4 {
		t.Error("TaskSet wrong")
	}
	if o.WorkingSetSize() != 1 {
		t.Errorf("initial working set = %d, want 1 (d-bottom)", o.WorkingSetSize())
	}
	if err := o.AddPeriod(tr.Periods[0]); err != nil {
		t.Fatal(err)
	}
	if o.Stats().Periods != 1 || o.Stats().Messages != 2 {
		t.Errorf("stats = %+v", o.Stats())
	}
	if o.WorkingSetSize() != 3 {
		t.Errorf("working set = %d, want 3", o.WorkingSetSize())
	}
}

// TestOnlineEmptySession: a session with no periods returns d-bottom.
func TestOnlineEmptySession(t *testing.T) {
	o, err := NewOnline([]string{"x", "y"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.Hypotheses[0].Equal(depfunc.Bottom(res.TaskSet)) {
		t.Error("empty session should yield d-bottom")
	}
}

// simFigure1Trace simulates the Figure 1 model for the given number of
// periods under one seed; satellite tests use it for traces whose
// bounded-mode runs actually exercise merging (unlike the tiny paper
// example).
func simFigure1Trace(t *testing.T, periods int, seed int64) *trace.Trace {
	t.Helper()
	out, err := sim.Run(model.Figure1(), sim.Options{Periods: periods, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return out.Trace
}

// TestOnlineRingWraparound pins the ring buffer's content across the
// wrap: after feeding n periods into a k-slot window, the retained
// trace must hold exactly the last k periods, oldest first, preserving
// each period's messages and executions.
func TestOnlineRingWraparound(t *testing.T) {
	tr := simFigure1Trace(t, 7, 5)
	const k = 3
	o, err := NewOnline(tr.Tasks, Options{RetainPeriods: k})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
		if want := min(i+1, k); o.RetainedPeriods() != want {
			t.Fatalf("after period %d: RetainedPeriods = %d, want %d", i, o.RetainedPeriods(), want)
		}
	}
	got := o.retainedTrace()
	if len(got.Periods) != k {
		t.Fatalf("retained trace has %d periods, want %d", len(got.Periods), k)
	}
	want := tr.Periods[len(tr.Periods)-k:]
	for i, p := range got.Periods {
		w := want[i]
		if len(p.Msgs) != len(w.Msgs) || len(p.Execs) != len(w.Execs) {
			t.Fatalf("retained period %d shape differs: %d msgs/%d execs, want %d/%d",
				i, len(p.Msgs), len(p.Execs), len(w.Msgs), len(w.Execs))
		}
		for j, m := range p.Msgs {
			if m != w.Msgs[j] {
				t.Fatalf("retained period %d message %d = %+v, want %+v", i, j, m, w.Msgs[j])
			}
		}
		for task, iv := range w.Execs {
			if p.Execs[task] != iv {
				t.Fatalf("retained period %d exec %q = %+v, want %+v", i, task, p.Execs[task], iv)
			}
		}
	}
}

// TestOnlineVerifyUnavailableSentinel: the sentinel is distinguishable
// with errors.Is and is a Result-time condition, not a session
// failure — the session stays alive, keeps accepting periods, and
// keeps returning the sentinel until retention is configured.
func TestOnlineVerifyUnavailableSentinel(t *testing.T) {
	tr := trace.PaperFigure2()
	o, err := NewOnline(tr.Tasks, Options{VerifyResults: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddPeriod(tr.Periods[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Result(); !errors.Is(err, ErrVerifyUnavailable) {
		t.Fatalf("Result = %v, want ErrVerifyUnavailable", err)
	}
	if o.Err() != nil {
		t.Fatalf("verification unavailability stuck to the session: %v", o.Err())
	}
	// The session is still live: more periods are accepted, the working
	// set keeps evolving, and the answer stays the same sentinel.
	if err := o.AddPeriod(tr.Periods[1]); err != nil {
		t.Fatalf("AddPeriod after the sentinel: %v", err)
	}
	if o.WorkingSetSize() == 0 {
		t.Fatal("working set vanished after the sentinel")
	}
	if _, err := o.Result(); !errors.Is(err, ErrVerifyUnavailable) {
		t.Fatalf("second Result = %v, want ErrVerifyUnavailable again", err)
	}
}

// TestOnlineVerifyAfterWrapEqualsBatchSuffix: verification after the
// ring wraps is equivalent to batch-learning the full trace without
// verification and filtering the hypotheses against the retained
// suffix by hand — in bounded mode, where verification has teeth
// (merged hypotheses can fail to match their own trace).
func TestOnlineVerifyAfterWrapEqualsBatchSuffix(t *testing.T) {
	const k = 2
	for seed := int64(0); seed < 8; seed++ {
		tr := simFigure1Trace(t, 6, seed)
		for _, bound := range []int{0, 2, 4} {
			o, err := NewOnline(tr.Tasks, Options{Bound: bound, VerifyResults: true, RetainPeriods: k})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range tr.Periods {
				if err := o.AddPeriod(p); err != nil {
					t.Fatal(err)
				}
			}

			batch, err := Learn(tr, Options{Bound: bound})
			if err != nil {
				t.Fatalf("seed %d bound %d: batch: %v", seed, bound, err)
			}
			suffix := trace.New(tr.Tasks)
			suffix.Periods = append(suffix.Periods, tr.Periods[len(tr.Periods)-k:]...)
			var wantKeys []string
			for _, d := range batch.Hypotheses {
				if ok, _ := depfunc.MatchTrace(d, suffix, depfunc.CandidatePolicy{}); ok {
					wantKeys = append(wantKeys, d.Key())
				}
			}

			got, err := o.Result()
			if len(wantKeys) == 0 {
				if !errors.Is(err, ErrNoHypothesis) {
					t.Fatalf("seed %d bound %d: hand filter kept nothing but Result = %v, want ErrNoHypothesis",
						seed, bound, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("seed %d bound %d: %v", seed, bound, err)
			}
			gotKeys := make([]string, 0, len(got.Hypotheses))
			for _, d := range got.Hypotheses {
				gotKeys = append(gotKeys, d.Key())
			}
			if len(gotKeys) != len(wantKeys) {
				t.Fatalf("seed %d bound %d: verified-after-wrap returned %d hypotheses, hand filter kept %d",
					seed, bound, len(gotKeys), len(wantKeys))
			}
			for i := range gotKeys {
				if gotKeys[i] != wantKeys[i] {
					t.Fatalf("seed %d bound %d: hypothesis %d is %q, hand filter has %q",
						seed, bound, i, gotKeys[i], wantKeys[i])
				}
			}
			if dropped := len(batch.Hypotheses) - len(wantKeys); dropped != got.Stats.DroppedUnsound {
				t.Fatalf("seed %d bound %d: DroppedUnsound = %d, hand filter dropped %d",
					seed, bound, got.Stats.DroppedUnsound, dropped)
			}
		}
	}
}
