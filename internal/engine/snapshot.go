package engine

import (
	"fmt"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/hypothesis"
	"github.com/blackbox-rt/modelgen/internal/obs"
)

// State is a deep-copied snapshot of an engine session at a period
// boundary: the cumulative execution-violation history, the working
// hypothesis set (assumption-free — end-of-period post-processing
// always clears assumptions before ProcessPeriod returns) and the run
// statistics. A State shares no memory with the engine it came from,
// so the session may keep processing periods without disturbing it.
//
// Provenance chains are not part of a State: a session restored from
// one starts fresh derivation chains (documented on
// learner.Online.Snapshot, the public entry point).
type State struct {
	// History is the cumulative execution-violation vector, row-major
	// over the task-set index space (length n²).
	History []bool
	// Working holds the live dependency functions in working-set
	// order.
	Working []*depfunc.DepFunc
	// Stats is the instrumentation snapshot at checkpoint time.
	Stats Stats
}

// State snapshots the engine between periods. The copy is deep; see
// the State type comment.
func (e *Engine) State() *State {
	st := &State{
		History: append([]bool(nil), e.hist...),
		Working: make([]*depfunc.DepFunc, 0, len(e.cur)),
		Stats:   e.stats,
	}
	st.Stats.PeriodLive = append([]int(nil), e.stats.PeriodLive...)
	for _, h := range e.cur {
		st.Working = append(st.Working, h.D.Clone())
	}
	// A full snapshot is a valid delta capture point: re-anchor so
	// PeriodDelta's "one period since the baseline" contract holds for
	// checkpoint-then-continue sessions.
	e.resetDeltaBase()
	return st
}

// Restore rebuilds an engine session over ts from a State captured by
// State() on a session with the same task set and algorithmic
// configuration: processing the same subsequent periods yields
// bit-identical working sets and results. The State is deep-copied in
// turn, so the caller may reuse or mutate it afterwards.
func Restore(ts *depfunc.TaskSet, cfg Config, st *State) (*Engine, error) {
	n := ts.Len()
	if len(st.History) != n*n {
		return nil, fmt.Errorf("engine: restore: history length %d does not fit a %d-task set", len(st.History), n)
	}
	if len(st.Working) == 0 {
		return nil, fmt.Errorf("engine: restore: empty working set")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	e := &Engine{
		ts:     ts,
		cfg:    cfg,
		hist:   append([]bool(nil), st.History...),
		cur:    make([]*hypothesis.Hypothesis, 0, len(st.Working)),
		seen:   hypothesis.NewDedup(),
		arenas: make([]*hypothesis.Arena, cfg.Workers+1),
	}
	for i := range e.arenas {
		e.arenas[i] = new(hypothesis.Arena)
	}
	for i, d := range st.Working {
		if !d.TaskSet().Equal(ts) {
			return nil, fmt.Errorf("engine: restore: working hypothesis %d is over task set %v, want %v",
				i, d.TaskSet().Names(), ts.Names())
		}
		h := hypothesis.FromDepFunc(d)
		if cfg.Provenance {
			h.EnableProvenance()
		}
		e.cur = append(e.cur, h)
	}
	e.stats = st.Stats
	e.stats.PeriodLive = append([]int(nil), st.Stats.PeriodLive...)
	if e.stats.Peak < len(e.cur) {
		e.stats.Peak = len(e.cur)
	}
	e.resetDeltaBase()
	if cfg.Observer != nil {
		cfg.Observer.OnEngineStart(obs.EngineStart{Workers: cfg.Workers, Bound: cfg.Bound})
	}
	return e, nil
}
