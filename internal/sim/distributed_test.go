package sim

import (
	"testing"

	"github.com/blackbox-rt/modelgen/internal/model"
)

func TestDistributedModelValid(t *testing.T) {
	m := model.GMStyleDistributed()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ecus := map[string]bool{}
	for _, task := range m.Tasks {
		if task.ECU == "" {
			t.Errorf("task %s has no ECU", task.Name)
		}
		ecus[task.ECU] = true
	}
	if len(ecus) != 4 {
		t.Errorf("ECUs = %d, want 4", len(ecus))
	}
}

func TestDistributedSimulates(t *testing.T) {
	out, err := Run(model.GMStyleDistributed(), Options{Periods: 27, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(out.Trace.Periods); got != 27 {
		t.Fatalf("periods = %d", got)
	}
}

// TestNoIntraECUOverlap: on each ECU, task executions never overlap
// except through preemption nesting — an interval may contain another
// (the preempted task's interval spans its preemptors'), but two
// intervals never partially overlap.
func TestNoIntraECUOverlap(t *testing.T) {
	m := model.GMStyleDistributed()
	out, err := Run(m, Options{Periods: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range out.Trace.Periods {
		type iv struct {
			task       string
			start, end int64
		}
		perECU := map[string][]iv{}
		for name, in := range p.Execs {
			ecu := m.Task(name).ECU
			perECU[ecu] = append(perECU[ecu], iv{name, in.Start, in.End})
		}
		for ecu, ivs := range perECU {
			for i := 0; i < len(ivs); i++ {
				for j := i + 1; j < len(ivs); j++ {
					a, b := ivs[i], ivs[j]
					if a.start > b.start {
						a, b = b, a
					}
					disjoint := b.start >= a.end
					nested := b.end <= a.end
					if !disjoint && !nested {
						t.Errorf("period %d ECU %s: %s [%d,%d] partially overlaps %s [%d,%d]",
							p.Index, ecu, a.task, a.start, a.end, b.task, b.start, b.end)
					}
				}
			}
		}
	}
}

// TestCrossECUParallelism: distributed execution actually runs tasks
// on different ECUs concurrently in at least some period.
func TestCrossECUParallelism(t *testing.T) {
	m := model.GMStyleDistributed()
	out, err := Run(m, Options{Periods: 27, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	overlapping := false
	for _, p := range out.Trace.Periods {
		names := p.ExecutedTasks()
		for i := 0; i < len(names) && !overlapping; i++ {
			for j := i + 1; j < len(names); j++ {
				a, b := names[i], names[j]
				if m.Task(a).ECU == m.Task(b).ECU {
					continue
				}
				ia, ib := p.Execs[a], p.Execs[b]
				if ia.Start < ib.End && ib.Start < ia.End {
					overlapping = true
					break
				}
			}
		}
	}
	if !overlapping {
		t.Error("no cross-ECU parallel execution observed in 27 periods")
	}
}

// TestDistributedFasterMakespan: with four ECUs the functional burst
// finishes earlier than on one ECU (same seed, same model topology).
func TestDistributedFasterMakespan(t *testing.T) {
	single, err := Run(model.GMStyle(), Options{Periods: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(model.GMStyleDistributed(), Options{Periods: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The overall span is pinned by the sync-gated Q, so compare the
	// completion of the functional pipeline (task P) instead.
	sum := func(o *Output, period int64) int64 {
		var total int64
		for _, p := range o.Trace.Periods {
			if iv, ok := p.Execs["P"]; ok {
				total += iv.End - int64(p.Index)*period
			}
		}
		return total
	}
	s := sum(single, model.GMStyle().Period)
	d := sum(multi, model.GMStyleDistributed().Period)
	if d >= s {
		t.Errorf("distributed pipeline completion %d not earlier than single-ECU %d", d, s)
	}
}
