package sat

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

func TestLiteralBasics(t *testing.T) {
	if Literal(3).Var() != 3 || Literal(-3).Var() != 3 {
		t.Error("Var wrong")
	}
	if !Literal(3).Positive() || Literal(-3).Positive() {
		t.Error("Positive wrong")
	}
}

func TestAddClauseRange(t *testing.T) {
	c := NewCNF(2)
	if err := c.AddClause(1, -2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddClause(3); err == nil {
		t.Error("out-of-range literal accepted")
	}
	if err := c.AddClause(0); err == nil {
		t.Error("zero literal accepted")
	}
}

func TestSolveTrivial(t *testing.T) {
	c := NewCNF(1)
	if _, ok, _ := Solve(c); !ok {
		t.Error("empty formula should be SAT")
	}
	c.MustAddClause(1)
	a, ok, _ := Solve(c)
	if !ok || !a[1] {
		t.Error("unit clause not solved")
	}
	c.MustAddClause(-1)
	if _, ok, _ := Solve(c); ok {
		t.Error("x AND NOT x should be UNSAT")
	}
}

func TestSolveSmallFormulas(t *testing.T) {
	// (x1 | x2) & (!x1 | x2) & (x1 | !x2) -- satisfied by x1=x2=1.
	c := NewCNF(2)
	c.MustAddClause(1, 2)
	c.MustAddClause(-1, 2)
	c.MustAddClause(1, -2)
	a, ok, _ := Solve(c)
	if !ok || !Satisfies(c, a) {
		t.Fatalf("ok=%v a=%v", ok, a)
	}
	// Add (!x1 | !x2) to make it UNSAT.
	c.MustAddClause(-1, -2)
	if _, ok, _ := Solve(c); ok {
		t.Error("should be UNSAT")
	}
}

func TestSolvePigeonhole(t *testing.T) {
	// 3 pigeons, 2 holes: UNSAT. Variables p_{i,h} = 2i+h+1.
	c := NewCNF(6)
	v := func(i, h int) Literal { return Literal(2*i + h + 1) }
	for i := 0; i < 3; i++ {
		c.MustAddClause(v(i, 0), v(i, 1))
	}
	for h := 0; h < 2; h++ {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				c.MustAddClause(-v(i, h), -v(j, h))
			}
		}
	}
	if _, ok, _ := Solve(c); ok {
		t.Error("pigeonhole 3/2 should be UNSAT")
	}
}

// TestSolveRandomAgainstBruteForce cross-checks DPLL against
// exhaustive enumeration on random small formulas.
func TestSolveRandomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		n := 2 + r.Intn(5)
		c := NewCNF(n)
		nc := 1 + r.Intn(12)
		for k := 0; k < nc; k++ {
			width := 1 + r.Intn(3)
			cl := make([]Literal, 0, width)
			for w := 0; w < width; w++ {
				l := Literal(1 + r.Intn(n))
				if r.Intn(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			c.MustAddClause(cl...)
		}
		want := false
		for mask := 0; mask < 1<<n; mask++ {
			a := make(Assignment, n+1)
			for v := 1; v <= n; v++ {
				a[v] = mask&(1<<(v-1)) != 0
			}
			if Satisfies(c, a) {
				want = true
				break
			}
		}
		a, got, _ := Solve(c)
		if got != want {
			t.Fatalf("iter %d: Solve=%v brute=%v\n%s", iter, got, want, c.DIMACS())
		}
		if got && !Satisfies(c, a) {
			t.Fatalf("iter %d: returned assignment does not satisfy", iter)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	c := NewCNF(3)
	c.MustAddClause(1, -2)
	c.MustAddClause(2, 3)
	out := c.DIMACS()
	back, err := ParseDIMACS(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != 3 || len(back.Clauses) != 2 {
		t.Fatalf("round trip: %+v", back)
	}
	if back.DIMACS() != out {
		t.Errorf("unstable round trip:\n%s\nvs\n%s", out, back.DIMACS())
	}
}

func TestParseDIMACS(t *testing.T) {
	in := `c a comment
p cnf 3 2
1 -2 0
2 3 0
`
	c, err := ParseDIMACS(in)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVars != 3 || len(c.Clauses) != 2 {
		t.Fatalf("parsed %+v", c)
	}
	for _, bad := range []string{
		"",
		"1 2 0\n",
		"p cnf x y\n",
		"p dnf 1 1\n1 0\n",
		"p cnf 1 1\nfoo 0\n",
	} {
		if _, err := ParseDIMACS(bad); err == nil {
			t.Errorf("ParseDIMACS(%q) succeeded", bad)
		}
	}
	// Trailing clause without 0 terminator is accepted.
	c, err = ParseDIMACS("p cnf 2 1\n1 2")
	if err != nil || len(c.Clauses) != 1 {
		t.Errorf("trailing clause: %v %+v", err, c)
	}
}

func TestEncodeAssignmentShapes(t *testing.T) {
	p12 := depfunc.Pair{S: 1, R: 2}
	p13 := depfunc.Pair{S: 1, R: 3}
	// Two messages, both only (1,2): UNSAT (one message per pair).
	cnf := EncodeAssignment([][]depfunc.Pair{{p12}, {p12}})
	if _, ok, _ := Solve(cnf); ok {
		t.Error("two messages on one pair should be UNSAT")
	}
	// Second can take (1,3): SAT.
	cnf = EncodeAssignment([][]depfunc.Pair{{p12}, {p12, p13}})
	if _, ok, _ := Solve(cnf); !ok {
		t.Error("should be SAT")
	}
	// No messages: SAT.
	if _, ok, _ := Solve(EncodeAssignment(nil)); !ok {
		t.Error("empty assignment should be SAT")
	}
}

// TestMatchPeriodAgreesWithBacktracking is the cross-validation
// property: the SAT-based matcher and the backtracking matcher in
// depfunc must agree on random dependency functions and periods.
func TestMatchPeriodAgreesWithBacktracking(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tr := trace.PaperFigure2()
	ts := depfunc.MustTaskSet(tr.Tasks...)
	for iter := 0; iter < 400; iter++ {
		d := depfunc.Bottom(ts)
		for i := 0; i < ts.Len(); i++ {
			for j := 0; j < ts.Len(); j++ {
				if i != j {
					d.Set(i, j, lattice.Value(r.Intn(7)))
				}
			}
		}
		p := tr.Periods[r.Intn(len(tr.Periods))]
		want := depfunc.Match(d, p, depfunc.CandidatePolicy{})
		got := MatchPeriod(d, p, depfunc.CandidatePolicy{})
		if got != want {
			t.Fatalf("iter %d: sat=%v backtracking=%v\n%s", iter, got, want, d.Table())
		}
	}
}

func TestMatchPeriodImplicationViolation(t *testing.T) {
	tr := trace.PaperFigure2()
	ts := depfunc.MustTaskSet(tr.Tasks...)
	d := depfunc.Bottom(ts)
	d.Set(0, 1, lattice.Fwd) // t1 -> t2 violated in period 2
	if MatchPeriod(d, tr.Periods[1], depfunc.CandidatePolicy{}) {
		t.Error("implication violation not detected")
	}
}

func TestSolveStatsPopulated(t *testing.T) {
	c := NewCNF(3)
	c.MustAddClause(1, 2, 3)
	c.MustAddClause(-1, -2)
	c.MustAddClause(-2, -3)
	c.MustAddClause(-1, -3)
	_, ok, st := Solve(c)
	if !ok {
		t.Fatal("should be SAT (exactly one true)")
	}
	if st.Decisions == 0 && st.Propagations == 0 {
		t.Error("stats empty")
	}
}

func TestDIMACSSortedDeterministic(t *testing.T) {
	c := NewCNF(3)
	c.MustAddClause(3, 1, -2)
	out := c.DIMACS()
	if !strings.Contains(out, "1 -2 3 0") {
		t.Errorf("clause not sorted by variable:\n%s", out)
	}
}

func TestParseDIMACSNegativeCounts(t *testing.T) {
	// Regression: a negative variable count must be rejected, not
	// panic the solver's allocation.
	if _, err := ParseDIMACS("p cnf -5 2\n0\n"); err == nil {
		t.Fatal("negative variable count accepted")
	}
	if _, err := ParseDIMACS("p cnf 2 -1\n1 0\n"); err == nil {
		t.Fatal("negative clause count accepted")
	}
}
