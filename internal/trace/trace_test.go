package trace

import (
	"errors"
	"strings"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	tr := NewBuilder([]string{"a", "b"}).
		StartPeriod().Exec("a", 0, 5).Msg("m1", 6, 7).Exec("b", 8, 12).
		StartPeriod().Exec("a", 20, 25).
		MustBuild()
	if got := len(tr.Periods); got != 2 {
		t.Fatalf("periods = %d, want 2", got)
	}
	p0 := tr.Periods[0]
	if !p0.Executed("a") || !p0.Executed("b") {
		t.Error("period 0 should execute a and b")
	}
	if p0.Executed("c") {
		t.Error("period 0 should not execute c")
	}
	if len(p0.Msgs) != 1 || p0.Msgs[0].ID != "m1" {
		t.Errorf("period 0 msgs = %+v", p0.Msgs)
	}
	if tr.Periods[1].Executed("b") {
		t.Error("period 1 should not execute b")
	}
}

func TestBuilderUnknownTask(t *testing.T) {
	_, err := NewBuilder([]string{"a"}).StartPeriod().Exec("zz", 0, 1).Build()
	if !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("err = %v, want ErrUnknownTask", err)
	}
}

func TestBuilderDuplicateExec(t *testing.T) {
	_, err := NewBuilder([]string{"a"}).StartPeriod().Exec("a", 0, 1).Exec("a", 2, 3).Build()
	if !errors.Is(err, ErrDuplicateExec) {
		t.Fatalf("err = %v, want ErrDuplicateExec", err)
	}
}

func TestBuilderImplicitPeriod(t *testing.T) {
	tr := NewBuilder([]string{"a"}).Exec("a", 0, 1).MustBuild()
	if len(tr.Periods) != 1 {
		t.Fatalf("periods = %d, want 1", len(tr.Periods))
	}
}

func TestBuilderSortsMessages(t *testing.T) {
	tr := NewBuilder([]string{"a"}).
		StartPeriod().Exec("a", 0, 1).Msg("m2", 10, 11).Msg("m1", 2, 3).
		MustBuild()
	if tr.Periods[0].Msgs[0].ID != "m1" {
		t.Errorf("messages not sorted by rise: %+v", tr.Periods[0].Msgs)
	}
}

func TestValidateInvertedInterval(t *testing.T) {
	tr := New([]string{"a"})
	tr.Periods = append(tr.Periods, &Period{Execs: map[string]Interval{"a": {5, 1}}})
	if err := tr.Validate(); !errors.Is(err, ErrInvertedEvent) {
		t.Fatalf("err = %v, want ErrInvertedEvent", err)
	}
}

func TestValidateDuplicateMsgID(t *testing.T) {
	tr := New([]string{"a"})
	tr.Periods = append(tr.Periods, &Period{
		Execs: map[string]Interval{},
		Msgs:  []Message{{ID: "m", Rise: 0, Fall: 1}, {ID: "m", Rise: 2, Fall: 3}},
	})
	if err := tr.Validate(); !errors.Is(err, ErrDuplicateMsgID) {
		t.Fatalf("err = %v, want ErrDuplicateMsgID", err)
	}
}

func TestValidateUnsortedPeriods(t *testing.T) {
	tr := New([]string{"a"})
	tr.Periods = append(tr.Periods,
		&Period{Index: 0, Execs: map[string]Interval{"a": {100, 110}}},
		&Period{Index: 1, Execs: map[string]Interval{"a": {0, 10}}})
	if err := tr.Validate(); !errors.Is(err, ErrUnsortedPeriods) {
		t.Fatalf("err = %v, want ErrUnsortedPeriods", err)
	}
}

func TestFromEvents(t *testing.T) {
	evs := []Event{
		{0, PeriodMark, ""},
		{1, TaskStart, "a"},
		{5, TaskEnd, "a"},
		{6, MsgRise, "m1"},
		{7, MsgFall, "m1"},
		{8, TaskStart, "b"},
		{9, TaskEnd, "b"},
		{10, PeriodMark, ""},
		{11, TaskStart, "a"},
		{12, TaskEnd, "a"},
	}
	tr, err := FromEvents([]string{"a", "b"}, evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Periods) != 2 {
		t.Fatalf("periods = %d, want 2", len(tr.Periods))
	}
	if got := tr.Periods[0].Execs["a"]; got != (Interval{1, 5}) {
		t.Errorf("a interval = %+v", got)
	}
	if len(tr.Periods[0].Msgs) != 1 {
		t.Errorf("period 0 msgs = %+v", tr.Periods[0].Msgs)
	}
}

func TestFromEventsUnsortedInput(t *testing.T) {
	evs := []Event{
		{5, TaskEnd, "a"},
		{1, TaskStart, "a"},
	}
	tr, err := FromEvents([]string{"a"}, evs)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Periods[0].Execs["a"]; got != (Interval{1, 5}) {
		t.Errorf("a interval = %+v", got)
	}
}

func TestFromEventsCrossingPeriod(t *testing.T) {
	evs := []Event{
		{1, TaskStart, "a"},
		{2, PeriodMark, ""},
		{3, TaskEnd, "a"},
	}
	if _, err := FromEvents([]string{"a"}, evs); !errors.Is(err, ErrCrossingPeriod) {
		t.Fatalf("err = %v, want ErrCrossingPeriod", err)
	}
}

func TestFromEventsUnmatched(t *testing.T) {
	cases := [][]Event{
		{{1, TaskEnd, "a"}},
		{{1, MsgFall, "m"}},
		{{1, TaskStart, "a"}, {2, TaskStart, "a"}, {3, TaskEnd, "a"}, {4, TaskEnd, "a"}},
		{{1, MsgRise, "m"}, {2, MsgRise, "m"}, {3, MsgFall, "m"}, {4, MsgFall, "m"}},
	}
	for i, evs := range cases {
		if _, err := FromEvents([]string{"a"}, evs); err == nil {
			t.Errorf("case %d: no error for unmatched events", i)
		}
	}
}

func TestFromEventsPeriodic(t *testing.T) {
	evs := []Event{
		{1, TaskStart, "a"}, {5, TaskEnd, "a"},
		{101, TaskStart, "a"}, {105, TaskEnd, "a"},
		{201, TaskStart, "a"}, {203, TaskEnd, "a"},
	}
	tr, err := FromEventsPeriodic([]string{"a"}, evs, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Periods) != 3 {
		t.Fatalf("periods = %d, want 3", len(tr.Periods))
	}
}

func TestFromEventsPeriodicCrossing(t *testing.T) {
	evs := []Event{{90, TaskStart, "a"}, {110, TaskEnd, "a"}}
	if _, err := FromEventsPeriodic([]string{"a"}, evs, 0, 100); !errors.Is(err, ErrCrossingPeriod) {
		t.Fatalf("err = %v, want ErrCrossingPeriod", err)
	}
}

func TestFromEventsPeriodicBadLength(t *testing.T) {
	if _, err := FromEventsPeriodic([]string{"a"}, nil, 0, 0); err == nil {
		t.Fatal("no error for zero period length")
	}
}

func TestEventsRoundTrip(t *testing.T) {
	orig := PaperFigure2()
	evs := orig.Events()
	back, err := FromEvents(orig.Tasks, evs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.String(), orig.String(); got != want {
		t.Errorf("round trip mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTextRoundTrip(t *testing.T) {
	orig := PaperFigure2()
	var sb strings.Builder
	if err := Write(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.String(), orig.String(); got != want {
		t.Errorf("text round trip mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestReadEventForm(t *testing.T) {
	in := `
# event-level form
tasks a b
period
start a 1
end a 5
rise m1 6
fall m1 7
start b 8
end b 9
`
	tr, err := ReadString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Periods) != 1 {
		t.Fatalf("periods = %d", len(tr.Periods))
	}
	if got := tr.Periods[0].Execs["a"]; got != (Interval{1, 5}) {
		t.Errorf("a = %+v", got)
	}
	if got := tr.Periods[0].Msgs[0]; got != (Message{"m1", 6, 7}) {
		t.Errorf("m1 = %+v", got)
	}
}

func TestReadPerPeriodClocks(t *testing.T) {
	// Timestamps restart every period: legal in the text format.
	in := `tasks a
period
exec a 0 5
period
exec a 0 5
`
	tr, err := ReadString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Periods) != 2 {
		t.Fatalf("periods = %d", len(tr.Periods))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"period\nexec a 0 1\n",            // period before tasks
		"tasks a\ntasks b\n",              // duplicate tasks
		"tasks\n",                         // empty task set
		"tasks a\nexec a zero 1\n",        // bad number
		"tasks a\nexec a 0\n",             // arity
		"tasks a\nmsg m 0\n",              // arity
		"tasks a\nstart a\n",              // arity
		"tasks a\nbogus x\n",              // unknown directive
		"tasks a\nexec b 0 1\n",           // unknown task
		"tasks a\nexec a 0 1\nexec a 2 3", // duplicate exec
	}
	for i, in := range cases {
		if _, err := ReadString(in); err == nil {
			t.Errorf("case %d: no error for %q", i, in)
		}
	}
}

func TestStats(t *testing.T) {
	s := PaperFigure2().Stats()
	if s.Periods != 3 {
		t.Errorf("Periods = %d, want 3", s.Periods)
	}
	if s.TaskExecutions != 3+3+4 {
		t.Errorf("TaskExecutions = %d, want 10", s.TaskExecutions)
	}
	if s.Messages != 8 {
		t.Errorf("Messages = %d, want 8", s.Messages)
	}
	if s.EventPairs != 18 {
		t.Errorf("EventPairs = %d, want 18", s.EventPairs)
	}
}

func TestSpan(t *testing.T) {
	tr := PaperFigure2()
	span := tr.Periods[0].Span()
	if span != (Interval{0, 42}) {
		t.Errorf("span = %+v, want {0 42}", span)
	}
	empty := &Period{Execs: map[string]Interval{}}
	if empty.Span() != (Interval{}) {
		t.Errorf("empty span = %+v", empty.Span())
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := PaperFigure2()
	cp := orig.Clone()
	cp.Periods[0].Execs["t1"] = Interval{999, 1000}
	cp.Periods[0].Msgs[0].ID = "zzz"
	if orig.Periods[0].Execs["t1"] == (Interval{999, 1000}) {
		t.Error("Clone shares exec maps")
	}
	if orig.Periods[0].Msgs[0].ID == "zzz" {
		t.Error("Clone shares message slices")
	}
}

func TestSlice(t *testing.T) {
	tr := PaperFigure2()
	s := tr.Slice(1, 3)
	if len(s.Periods) != 2 {
		t.Errorf("Slice(1,3) periods = %d, want 2", len(s.Periods))
	}
	if got := tr.Slice(-1, 99); len(got.Periods) != 3 {
		t.Errorf("Slice(-1,99) periods = %d, want 3", len(got.Periods))
	}
	if got := tr.Slice(2, 1); len(got.Periods) != 0 {
		t.Errorf("Slice(2,1) periods = %d, want 0", len(got.Periods))
	}
}

func TestExecutedTasksSorted(t *testing.T) {
	tr := NewBuilder([]string{"z", "a", "m"}).
		StartPeriod().Exec("z", 0, 1).Exec("a", 2, 3).Exec("m", 4, 5).
		MustBuild()
	got := tr.Periods[0].ExecutedTasks()
	want := []string{"a", "m", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExecutedTasks = %v, want %v", got, want)
		}
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{3, 7}
	if !iv.Contains(3) || !iv.Contains(7) || iv.Contains(8) || iv.Contains(2) {
		t.Error("Contains wrong")
	}
	if iv.Duration() != 4 {
		t.Errorf("Duration = %d", iv.Duration())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		TaskStart: "start", TaskEnd: "end", MsgRise: "rise", MsgFall: "fall", PeriodMark: "period",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("invalid kind string = %q", got)
	}
}

func TestPaperFigure2Shape(t *testing.T) {
	tr := PaperFigure2()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	wantTasks := [][]string{
		{"t1", "t2", "t4"},
		{"t1", "t3", "t4"},
		{"t1", "t2", "t3", "t4"},
	}
	wantMsgs := []int{2, 2, 4}
	for i, p := range tr.Periods {
		got := p.ExecutedTasks()
		if len(got) != len(wantTasks[i]) {
			t.Fatalf("period %d tasks = %v, want %v", i, got, wantTasks[i])
		}
		for j := range got {
			if got[j] != wantTasks[i][j] {
				t.Fatalf("period %d tasks = %v, want %v", i, got, wantTasks[i])
			}
		}
		if len(p.Msgs) != wantMsgs[i] {
			t.Fatalf("period %d msgs = %d, want %d", i, len(p.Msgs), wantMsgs[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := PaperFigure2()
	var buf strings.Builder
	if err := WriteJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != orig.String() {
		t.Errorf("JSON round trip mismatch:\n%s\nvs\n%s", back.String(), orig.String())
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{`,
		`{"tasks":["a"],"periods":[{"execs":[{"task":"zz","start":0,"end":1}]}]}`,
		`{"tasks":["a"],"periods":[{"execs":[{"task":"a","start":5,"end":1}]}]}`,
		`{"tasks":["a"],"periods":[{"execs":[{"task":"a","start":0,"end":1},{"task":"a","start":2,"end":3}]}]}`,
	}
	for i, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %s", i, in)
		}
	}
}
