package load

import (
	"context"
	"testing"
)

// TestRunRestart runs the cold-restart scenario at test scale and
// pins the hydration contracts: the restore scan hydrates nothing,
// driving K streams hydrates exactly K, and every first ingest lands.
func TestRunRestart(t *testing.T) {
	rep, err := RunRestart(context.Background(), RestartConfig{
		Dir:     t.TempDir(),
		Streams: 40,
		Active:  5,
		Periods: 3,
	})
	if err != nil {
		t.Fatalf("restart run: %v\nreport: %+v", err, rep)
	}
	if rep.Violated() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.RestoredStreams != 40 {
		t.Errorf("restored %d streams, want 40", rep.RestoredStreams)
	}
	if rep.HydratedAfterRestore != 0 {
		t.Errorf("hydrated after restore = %d, want 0", rep.HydratedAfterRestore)
	}
	if rep.HydratedAfterActive != 5 {
		t.Errorf("hydrated after active = %d, want 5", rep.HydratedAfterActive)
	}
	if rep.FirstIngest.Max <= 0 {
		t.Errorf("no first-ingest samples: %+v", rep.FirstIngest)
	}
	if rep.RestoreSeconds <= 0 {
		t.Errorf("restore took %v seconds", rep.RestoreSeconds)
	}
	if s := rep.Format(); s == "" {
		t.Error("empty formatted report")
	}

	// Config validation: the scenario refuses to run without a dir.
	if _, err := RunRestart(context.Background(), RestartConfig{}); err == nil {
		t.Error("missing dir accepted")
	}
}
