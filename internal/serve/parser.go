package serve

import (
	"fmt"
	"strings"

	"github.com/blackbox-rt/modelgen/internal/can"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// parser is the per-stream ingest front end: it turns raw feed lines
// into complete periods. Text-format directives go straight into a
// trace.LineReader; lines starting with '(' are candump frames,
// converted by a can.StreamConverter into the rise/fall pair of the
// frame and fed into the same reader, so one stream may mix task
// events from an instrumented node with bus frames from a logger.
//
// With a positive periodUS the parser also cuts periods on a fixed
// grid anchored at the first timed event — the serving equivalent of
// slicing a capture by the system's known period.
//
// parser is owned by the ingest path under the stream's feed mutex
// and supports clone-and-commit: a request parses into a clone and
// the clone replaces the original only once the whole batch is
// accepted, which is what makes the 429 shed path atomic.
type parser struct {
	lr   *trace.LineReader
	conv *can.StreamConverter // nil unless the stream set a bit rate

	periodUS int64
	base     int64 // grid anchor: time of the first event seen
	haveBase bool
	boundary int64 // next grid cut, valid when haveBase
}

func newParser(tasks []string, bitRate, periodUS int64) (*parser, error) {
	lr, err := trace.NewLineReader(tasks)
	if err != nil {
		return nil, err
	}
	p := &parser{lr: lr, periodUS: periodUS}
	if bitRate > 0 {
		if p.conv, err = can.NewStreamConverter(bitRate); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (p *parser) clone() *parser {
	cp := *p
	cp.lr = p.lr.Clone()
	if p.conv != nil {
		cp.conv = p.conv.Clone()
	}
	return &cp
}

func (p *parser) partial() bool { return p.lr.Partial() }

// feed consumes one raw feed line and returns the periods it
// completed (usually zero or one; a candump frame crossing several
// empty grid slots still cuts at most one, since empty periods are
// skipped).
func (p *parser) feed(line string) ([]*trace.Period, error) {
	trimmed := strings.TrimSpace(line)
	if strings.HasPrefix(trimmed, "(") {
		return p.feedFrame(trimmed)
	}
	var out []*trace.Period
	if p.periodUS > 0 {
		if t, ok := eventTime(trimmed); ok {
			cut, err := p.gridCut(t)
			if err != nil {
				return nil, err
			}
			out = append(out, cut...)
		}
	}
	period, err := p.lr.Line(line)
	if err != nil {
		return nil, err
	}
	if period != nil {
		out = append(out, period)
	}
	return out, nil
}

func (p *parser) feedFrame(line string) ([]*trace.Period, error) {
	if p.conv == nil {
		return nil, fmt.Errorf("serve: candump line on a stream created without bit_rate")
	}
	events, err := p.conv.Line(line)
	if err != nil {
		return nil, err
	}
	var out []*trace.Period
	for _, ev := range events {
		if p.periodUS > 0 && ev.Kind == trace.MsgRise {
			// Cut on the rise only: the synthetic fall belongs to the
			// same frame and must stay in the same period.
			cut, err := p.gridCut(ev.Time)
			if err != nil {
				return nil, err
			}
			out = append(out, cut...)
		}
		var directive string
		switch ev.Kind {
		case trace.MsgRise:
			directive = fmt.Sprintf("rise %s %d", ev.Name, ev.Time)
		case trace.MsgFall:
			directive = fmt.Sprintf("fall %s %d", ev.Name, ev.Time)
		}
		period, err := p.lr.Line(directive)
		if err != nil {
			return nil, err
		}
		if period != nil {
			out = append(out, period)
		}
	}
	return out, nil
}

// gridCut closes the open period when t has reached the next grid
// boundary, and advances the boundary past t.
func (p *parser) gridCut(t int64) ([]*trace.Period, error) {
	if !p.haveBase {
		p.base, p.haveBase = t, true
		p.boundary = t + p.periodUS
		return nil, nil
	}
	if t < p.boundary {
		return nil, nil
	}
	var out []*trace.Period
	period, err := p.lr.Line("period")
	if err != nil {
		return nil, err
	}
	if period != nil {
		out = append(out, period)
	}
	for p.boundary <= t {
		p.boundary += p.periodUS
	}
	return out, nil
}

// eventTime extracts the timestamp of a timed text directive, so the
// grid cutter can run on mixed-format streams. Untimed or malformed
// lines report false and are left to the LineReader to accept or
// reject.
func eventTime(trimmed string) (int64, bool) {
	fields := strings.Fields(trimmed)
	switch {
	case len(fields) == 3 && (fields[0] == "start" || fields[0] == "end" ||
		fields[0] == "rise" || fields[0] == "fall"):
		var t int64
		if _, err := fmt.Sscanf(fields[2], "%d", &t); err == nil {
			return t, true
		}
	case len(fields) == 4 && (fields[0] == "exec" || fields[0] == "msg"):
		var t int64
		if _, err := fmt.Sscanf(fields[2], "%d", &t); err == nil {
			return t, true
		}
	}
	return 0, false
}
