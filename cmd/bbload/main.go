// Command bbload is the SLO-tracked load generator for bbserved: it
// drives N synthetic text and candump streams at a target aggregate
// batch rate against a live server (-addr) or an in-process one
// (default), reports p50/p95/p99 client-observed ingest latency,
// throughput, shed rate and availability per stream class, and — with
// -slo — exits nonzero when an objective is violated, so CI can gate
// on "the service still serves under load".
//
// Usage:
//
//	bbload -streams 64 -duration 5s -slo            # in-process smoke
//	bbload -addr http://host:8080 -streams 1000 -duration 30s -rate 2000
//	bbload -streams 8 -duration 5s -rate 96 -drift-flip 20 -slo   # drift injection
//	bbload -restart -streams 1000 -active 10 -json  # cold-restart benchmark
//	bbload -cluster -streams 200 -slo               # cluster smoke with forced migrations
//
// -restart switches to the cold-restart scenario: seed -streams
// checkpointed streams into a store, restart the server from disk,
// drive -active of them, and report restore time plus per-stream
// first-ingest latency (the lazy-hydration cost). Always in process.
//
// -cluster switches to the cluster scenario: boot -cluster-nodes
// in-process bbserved nodes behind a bbgate router, feed -streams
// streams through the gateway, force -cluster-migrations checkpoint
// handoffs while the feeds are in flight, then verify every stream's
// model against a single-node reference. Always in process.
//
// Exit codes: 0 ok, 1 SLO violation (-slo only), 2 run error,
// 3 goroutine leak after in-process shutdown.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/blackbox-rt/modelgen/internal/load"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/serve"
	"github.com/blackbox-rt/modelgen/internal/slo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbload: ")
	var (
		addr        = flag.String("addr", "", "target server base URL (empty = run bbserved in-process)")
		streams     = flag.Int("streams", 64, "number of concurrent synthetic streams")
		duration    = flag.Duration("duration", 5*time.Second, "load duration")
		rate        = flag.Float64("rate", 0, "aggregate batches/sec across all streams (0 = 2 per stream)")
		perBatch    = flag.Int("periods-per-batch", 3, "learnable periods per batch")
		canFrac     = flag.Float64("candump-fraction", 0.5, "fraction of candump-class streams")
		traceSample = flag.Float64("trace-sample", 0, "fraction of batches sent with a traceparent header")
		queue       = flag.Int("queue", 256, "per-stream ingest queue depth (in-process mode)")
		jsonOut     = flag.Bool("json", false, "print the report as JSON")
		sloGate     = flag.Bool("slo", false, "exit 1 when an SLO threshold is violated")
		sloP99      = flag.Duration("slo-p99", 500*time.Millisecond, "p99 ingest latency threshold")
		sloShed     = flag.Float64("slo-shed", 0.01, "maximum shed rate")
		sloAvail    = flag.Float64("slo-availability", 0.999, "minimum availability")
		driftFlip   = flag.Int("drift-flip", 0, "drift scenario: flip every stream's regime after this many periods (0 = off)")
		driftWindow = flag.Int("drift-window", 20, "drift scenario: detection-lag bound in periods")
		restart     = flag.Bool("restart", false, "run the cold-restart scenario instead of the load profile")
		restartDir  = flag.String("restart-dir", "", "restart scenario: store root (empty = temp dir, removed after)")
		active      = flag.Int("active", 10, "restart scenario: streams driven after the restart")
		periods     = flag.Int("periods", 3, "restart scenario: seeded periods per stream")
		clusterRun  = flag.Bool("cluster", false, "run the cluster scenario instead of the load profile")
		clusterN    = flag.Int("cluster-nodes", 3, "cluster scenario: in-process node count")
		clusterMig  = flag.Int("cluster-migrations", 10, "cluster scenario: streams force-migrated mid-run")
		clusterPer  = flag.Int("cluster-periods", 6, "cluster scenario: periods fed per stream")
	)
	flag.Parse()

	if *restart {
		os.Exit(runRestart(*restartDir, *streams, *active, *periods, *queue, *jsonOut, *sloGate))
	}
	if *clusterRun {
		os.Exit(runCluster(clusterArgs{
			nodes:      *clusterN,
			streams:    *streams,
			periods:    *clusterPer,
			migrations: *clusterMig,
			queue:      *queue,
			p99:        sloP99.Seconds(),
			avail:      *sloAvail,
			jsonOut:    *jsonOut,
			sloGate:    *sloGate,
		}))
	}

	thr := load.Thresholds{
		P99LatencySeconds: sloP99.Seconds(),
		MaxShedRate:       *sloShed,
		MinAvailability:   *sloAvail,
	}
	cfg := load.Config{
		Streams:         *streams,
		Duration:        *duration,
		Rate:            *rate,
		PeriodsPerBatch: *perBatch,
		CandumpFraction: *canFrac,
		TraceSample:     *traceSample,
		SLO:             thr,
		DriftFlipAfter:  *driftFlip,
		DriftWindow:     *driftWindow,
	}

	// In-process mode boots a full bbserved — registry, tracer, SLO
	// monitor — so the smoke run exercises the same code paths a
	// deployment would, and can check goroutine hygiene afterwards.
	var sv *serve.Server
	var stopMon func()
	baseline := runtime.NumGoroutine()
	if *addr == "" {
		reg := obs.NewRegistry()
		obs.RuntimeMetrics(reg)
		var tr *obs.Tracer
		if *traceSample > 0 {
			tr = obs.NewTracer(obs.TracerConfig{Sample: *traceSample})
		}
		mon := slo.NewMonitor(slo.Config{
			Registry:   reg,
			Objectives: slo.DefaultServeObjectives(thr.P99LatencySeconds),
		})
		stopMon = mon.Start(time.Second)
		sv = serve.New(serve.Config{
			Registry:   reg,
			Tracer:     tr,
			SLO:        mon.Handler(),
			QueueDepth: *queue,
		})
		cfg.Handler = sv.Handler()
		log.Printf("in-process bbserved: %d streams, %s", *streams, *duration)
	} else {
		cfg.BaseURL = *addr
		cfg.Cleanup = true
		log.Printf("target %s: %d streams, %s", *addr, *streams, *duration)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := load.Run(ctx, cfg)
	if err != nil {
		log.Printf("run: %v", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		fmt.Print(rep.Format())
	}

	leak := false
	if sv != nil {
		stopMon()
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := sv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
			os.Exit(2)
		}
		leak = !goroutinesSettled(baseline)
		if leak {
			log.Printf("goroutine leak: %d at start, %d after shutdown",
				baseline, runtime.NumGoroutine())
		}
	}

	switch {
	case leak:
		os.Exit(3)
	case *sloGate && rep.Violated():
		os.Exit(1)
	}
}

// clusterArgs carries the cluster scenario's CLI surface.
type clusterArgs struct {
	nodes, streams, periods, migrations, queue int
	p99, avail                                 float64
	jsonOut, sloGate                           bool
}

// runCluster executes the cluster scenario: an in-process N-node
// cluster behind a bbgate router, the stream fleet fed through the
// gateway, and forced checkpoint-handoff migrations mid-run. Exit
// codes follow the shared conventions (1 = SLO violation under -slo,
// 2 = run error).
func runCluster(a clusterArgs) int {
	dir, err := os.MkdirTemp("", "bbload-cluster-*")
	if err != nil {
		log.Printf("cluster: %v", err)
		return 2
	}
	defer os.RemoveAll(dir)
	log.Printf("cluster scenario: %d nodes, %d streams × %d periods, %d forced migrations",
		a.nodes, a.streams, a.periods, a.migrations)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := load.RunCluster(ctx, load.ClusterConfig{
		Dir:        dir,
		Nodes:      a.nodes,
		Streams:    a.streams,
		Periods:    a.periods,
		Migrations: a.migrations,
		QueueDepth: a.queue,
		SLO: load.Thresholds{
			P99LatencySeconds: a.p99,
			MinAvailability:   a.avail,
		},
	})
	if err != nil {
		log.Printf("cluster: %v", err)
		return 2
	}
	if a.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		fmt.Print(rep.Format())
	}
	if a.sloGate && rep.Violated() {
		return 1
	}
	return 0
}

// runRestart executes the cold-restart scenario and returns the exit
// code under the shared conventions (1 = violated contract under
// -slo, 2 = run error).
func runRestart(dir string, streams, active, periods, queue int, jsonOut, sloGate bool) int {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "bbload-restart-*")
		if err != nil {
			log.Printf("restart: %v", err)
			return 2
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	log.Printf("restart scenario: %d streams (%d active), store %s", streams, active, dir)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := load.RunRestart(ctx, load.RestartConfig{
		Dir:        dir,
		Streams:    streams,
		Active:     active,
		Periods:    periods,
		QueueDepth: queue,
	})
	if err != nil {
		log.Printf("restart: %v", err)
		return 2
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		fmt.Print(rep.Format())
	}
	if sloGate && rep.Violated() {
		return 1
	}
	return 0
}

// goroutinesSettled waits for the goroutine count to return to (near)
// the pre-run baseline — the soak-test hygiene check as a CLI gate.
func goroutinesSettled(baseline int) bool {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+5 {
			return true
		}
		time.Sleep(100 * time.Millisecond)
	}
	return false
}
