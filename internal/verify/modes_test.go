package verify

import (
	"strings"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

func figure2Trace() *trace.Trace { return trace.PaperFigure2() }

func TestModesFigure2(t *testing.T) {
	ms := Modes(figure2Trace())
	// Three distinct modes, one period each.
	if len(ms) != 3 {
		t.Fatalf("modes = %d, want 3", len(ms))
	}
	keys := map[string]bool{}
	for _, m := range ms {
		if m.Count() != 1 {
			t.Errorf("mode %s count = %d", m.Key(), m.Count())
		}
		keys[m.Key()] = true
	}
	for _, want := range []string{"t1+t2+t4", "t1+t3+t4", "t1+t2+t3+t4"} {
		if !keys[want] {
			t.Errorf("missing mode %s; got %v", want, keys)
		}
	}
}

func TestModesAggregateRepeats(t *testing.T) {
	tr := trace.NewBuilder([]string{"a", "b"}).
		StartPeriod().Exec("a", 0, 1).
		StartPeriod().Exec("a", 100, 101).Exec("b", 102, 103).
		StartPeriod().Exec("a", 200, 201).
		MustBuild()
	ms := Modes(tr)
	if len(ms) != 2 {
		t.Fatalf("modes = %d, want 2", len(ms))
	}
	// Most frequent first.
	if ms[0].Key() != "a" || ms[0].Count() != 2 {
		t.Errorf("first mode = %s x%d", ms[0].Key(), ms[0].Count())
	}
	if ms[0].Periods[0] != 0 || ms[0].Periods[1] != 2 {
		t.Errorf("mode periods = %v", ms[0].Periods)
	}
}

func TestAnalyzeModesAlwaysOn(t *testing.T) {
	rep := AnalyzeModes(figure2Trace(), nil)
	want := []string{"t1", "t4"}
	if len(rep.AlwaysOn) != len(want) {
		t.Fatalf("AlwaysOn = %v", rep.AlwaysOn)
	}
	for i := range want {
		if rep.AlwaysOn[i] != want[i] {
			t.Fatalf("AlwaysOn = %v, want %v", rep.AlwaysOn, want)
		}
	}
}

func TestAnalyzeModesConsistentModel(t *testing.T) {
	// The paper's dLUB must be consistent with the paper's own trace.
	d := depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ->?   ->?   ->
t2    <-    ||    ||    ->
t3    <-    ||    ||    ->
t4    <-    <-?   <-?   ||
`)
	rep := AnalyzeModes(figure2Trace(), d)
	if len(rep.Violations) != 0 {
		t.Errorf("violations: %v", rep.Violations)
	}
}

func TestAnalyzeModesDetectsViolation(t *testing.T) {
	// Claim t1 always determines t2 — refuted by period 2's mode.
	d := depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ->    ||    ||
t2    <-    ||    ||    ||
t3    ||    ||    ||    ||
t4    ||    ||    ||    ||
`)
	rep := AnalyzeModes(figure2Trace(), d)
	if len(rep.Violations) == 0 {
		t.Fatal("no violation reported")
	}
	if !strings.Contains(rep.Violations[0], "d(t1,t2)") {
		t.Errorf("violation text: %q", rep.Violations[0])
	}
}

func TestAnalyzeModesEmptyTrace(t *testing.T) {
	rep := AnalyzeModes(trace.New([]string{"a"}), nil)
	if len(rep.Modes) != 0 || len(rep.AlwaysOn) != 0 {
		t.Errorf("empty trace report: %+v", rep)
	}
}

func TestModeOfDisjunction(t *testing.T) {
	d := depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ->?   ->?   ->
t2    <-    ||    ||    ->
t3    <-    ||    ||    ->
t4    <-    <-?   <-?   ||
`)
	got := ModeOfDisjunction(figure2Trace(), d, "t1")
	// Period 1: t2 only; period 2: t3 only; period 3: both.
	expect := map[string]bool{"{t2}": true, "{t3}": true, "{t2,t3}": true}
	if len(got) != 3 {
		t.Fatalf("modes = %v", got)
	}
	for _, g := range got {
		if !expect[g] {
			t.Errorf("unexpected mode %s", g)
		}
	}
	if ModeOfDisjunction(figure2Trace(), d, "zz") != nil {
		t.Error("unknown task should return nil")
	}
}
