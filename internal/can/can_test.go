package can

import "testing"

func TestFrameBits(t *testing.T) {
	// DLC 0: 47 + 0 + floor(33/4) = 47 + 8 = 55.
	if got := FrameBits(0); got != 55 {
		t.Errorf("FrameBits(0) = %d, want 55", got)
	}
	// DLC 8: 47 + 64 + floor(97/4) = 47 + 64 + 24 = 135.
	if got := FrameBits(8); got != 135 {
		t.Errorf("FrameBits(8) = %d, want 135", got)
	}
	// Clamping.
	if FrameBits(-3) != FrameBits(0) || FrameBits(12) != FrameBits(8) {
		t.Error("FrameBits does not clamp DLC")
	}
	// Monotonic in DLC.
	for d := 1; d <= 8; d++ {
		if FrameBits(d) <= FrameBits(d-1) {
			t.Errorf("FrameBits not monotonic at %d", d)
		}
	}
}

func TestNewBitRate(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero bit rate accepted")
	}
	b, err := New(500_000)
	if err != nil {
		t.Fatal(err)
	}
	// 2 us per bit.
	if got := b.FrameDuration(8); got != 135*2 {
		t.Errorf("FrameDuration(8) = %d, want 270", got)
	}
}

func TestSingleTransmission(t *testing.T) {
	b, _ := New(1_000_000)
	if err := b.Enqueue(Frame{ID: 5, DLC: 0, Label: "m1", Receiver: "x"}, 10); err != nil {
		t.Fatal(err)
	}
	fall, ok := b.NextCompletion()
	if !ok || fall != 10+55 {
		t.Fatalf("NextCompletion = %d, %v", fall, ok)
	}
	b.AdvanceTo(100)
	done := b.TakeCompleted()
	if len(done) != 1 {
		t.Fatalf("completed = %d", len(done))
	}
	tx := done[0]
	if tx.Rise != 10 || tx.Fall != 65 || tx.Frame.Label != "m1" || tx.Frame.Receiver != "x" {
		t.Errorf("tx = %+v", tx)
	}
	if !b.Idle() {
		t.Error("bus should be idle")
	}
}

func TestArbitrationLowestIDWins(t *testing.T) {
	b, _ := New(1_000_000)
	// First frame grabs the bus; two more queue while it transmits.
	b.Enqueue(Frame{ID: 50, DLC: 0, Label: "first"}, 0)
	b.Enqueue(Frame{ID: 30, DLC: 0, Label: "mid"}, 1)
	b.Enqueue(Frame{ID: 10, DLC: 0, Label: "urgent"}, 2)
	b.AdvanceTo(1000)
	done := b.TakeCompleted()
	if len(done) != 3 {
		t.Fatalf("completed = %d", len(done))
	}
	order := []string{"first", "urgent", "mid"}
	for i, tx := range done {
		if tx.Frame.Label != order[i] {
			t.Errorf("tx %d = %s, want %s", i, tx.Frame.Label, order[i])
		}
	}
	// Non-preemptive: first's fall is 55; urgent rises exactly then.
	if done[0].Fall != 55 || done[1].Rise != 55 {
		t.Errorf("transitions: %+v", done[:2])
	}
}

func TestNonPreemptive(t *testing.T) {
	b, _ := New(1_000_000)
	b.Enqueue(Frame{ID: 100, DLC: 8, Label: "slow"}, 0)
	b.Enqueue(Frame{ID: 1, DLC: 0, Label: "urgent"}, 5)
	b.AdvanceTo(1000)
	done := b.TakeCompleted()
	if done[0].Frame.Label != "slow" {
		t.Error("transmission was preempted")
	}
	if done[1].Rise != done[0].Fall {
		t.Error("urgent should start at slow's fall")
	}
}

func TestEnqueueErrors(t *testing.T) {
	b, _ := New(1_000_000)
	b.AdvanceTo(100)
	if err := b.Enqueue(Frame{ID: 1, DLC: 0}, 50); err == nil {
		t.Error("past enqueue accepted")
	}
	if err := b.Enqueue(Frame{ID: 1, DLC: 9}, 200); err == nil {
		t.Error("DLC 9 accepted")
	}
}

func TestQueueLenAndIdle(t *testing.T) {
	b, _ := New(1_000_000)
	if !b.Idle() {
		t.Error("new bus not idle")
	}
	b.Enqueue(Frame{ID: 1, DLC: 0}, 0)
	b.Enqueue(Frame{ID: 2, DLC: 0}, 0)
	if b.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1", b.QueueLen())
	}
}

func TestBackToBackFrames(t *testing.T) {
	// Frames queued together transmit back to back with no idle gap.
	b, _ := New(500_000)
	for i := 0; i < 5; i++ {
		b.Enqueue(Frame{ID: 10 + i, DLC: 4, Label: "f"}, 0)
	}
	b.AdvanceTo(100000)
	done := b.TakeCompleted()
	var prevFall int64
	for i, tx := range done {
		if tx.Rise != prevFall {
			t.Errorf("frame %d rises at %d, want %d", i, tx.Rise, prevFall)
		}
		prevFall = tx.Fall
	}
}

func TestFIFOWithinSameID(t *testing.T) {
	// Equal IDs cannot collide on a real bus, but determinism demands
	// FIFO behaviour.
	b, _ := New(1_000_000)
	b.Enqueue(Frame{ID: 99, DLC: 0, Label: "hold"}, 0)
	b.Enqueue(Frame{ID: 7, DLC: 0, Label: "a"}, 1)
	b.Enqueue(Frame{ID: 7, DLC: 0, Label: "b"}, 2)
	b.AdvanceTo(1000)
	done := b.TakeCompleted()
	if done[1].Frame.Label != "a" || done[2].Frame.Label != "b" {
		t.Errorf("same-ID order: %s, %s", done[1].Frame.Label, done[2].Frame.Label)
	}
}
