package report

import (
	"strings"
	"testing"
)

func TestTextAlignment(t *testing.T) {
	tbl := NewTable("Bound", "Run time").
		AddRow(1, "0.2s").
		AddRow(150, "19.0s")
	out := tbl.Text()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Bound  Run time") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "-----  --------") {
		t.Errorf("separator = %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "150    19.0s") {
		t.Errorf("row = %q", lines[3])
	}
	// No trailing spaces.
	for i, ln := range lines {
		if strings.TrimRight(ln, " ") != ln {
			t.Errorf("line %d has trailing spaces: %q", i, ln)
		}
	}
}

func TestMarkdown(t *testing.T) {
	out := NewTable("a", "b").AddRow("x|y", 2).Markdown()
	want := "| a | b |\n| --- | --- |\n| x\\|y | 2 |\n"
	if out != want {
		t.Errorf("got:\n%q\nwant:\n%q", out, want)
	}
}

func TestRowPaddingAndTruncation(t *testing.T) {
	tbl := NewTable("a", "b", "c").
		AddRow(1).
		AddRow(1, 2, 3, 4)
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	out := tbl.Text()
	if strings.Contains(out, "4") {
		t.Errorf("extra cell not truncated:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[2], "1") {
		t.Errorf("short row wrong: %q", lines[2])
	}
}

func TestWideCellGrowsColumn(t *testing.T) {
	out := NewTable("x").AddRow("a-very-wide-cell").Text()
	lines := strings.Split(out, "\n")
	if len(lines[1]) != len("a-very-wide-cell") {
		t.Errorf("separator not grown: %q", lines[1])
	}
}
