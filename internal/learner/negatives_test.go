package learner

import (
	"errors"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/trace"
)

// negPeriod builds a message-free period executing exactly the given
// tasks (a behaviour an analyst declares impossible).
func negPeriod(tasks ...string) *trace.Period {
	execs := map[string]trace.Interval{}
	t := int64(1000000)
	for _, name := range tasks {
		execs[name] = trace.Interval{Start: t, End: t + 10}
		t += 20
	}
	return &trace.Period{Index: -1, Execs: execs}
}

// TestNegativeExamplePrunes: declaring "t1 can never run alone"
// eliminates exactly d85 from the paper example's result set — the
// only most-specific hypothesis in which t1 determines nothing
// unconditionally.
func TestNegativeExamplePrunes(t *testing.T) {
	tr := trace.PaperFigure2()
	neg := negPeriod("t1")
	res, err := Learn(tr, Options{Negatives: []*trace.Period{neg}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypotheses) != 4 {
		t.Fatalf("hypotheses = %d, want 4 (d85 rejected)", len(res.Hypotheses))
	}
	if res.Stats.NegativeRejections != 1 {
		t.Errorf("rejections = %d, want 1", res.Stats.NegativeRejections)
	}
	if containsDep(res.Hypotheses, paperD85) {
		t.Error("d85 should have been rejected (it matches the negative)")
	}
	if !containsDep(res.Hypotheses, paperD81) || !containsDep(res.Hypotheses, paperD82) ||
		!containsDep(res.Hypotheses, paperD83) || !containsDep(res.Hypotheses, paperD84) {
		t.Error("d81..d84 must survive")
	}
}

// TestNegativeExampleIrrelevant: a negative no hypothesis matches
// changes nothing.
func TestNegativeExampleIrrelevant(t *testing.T) {
	tr := trace.PaperFigure2()
	// "t2 runs alone" violates d(t2,t1)=<- or d(t2,t4)=-> in every
	// returned hypothesis, so none match it.
	neg := negPeriod("t2")
	res, err := Learn(tr, Options{Negatives: []*trace.Period{neg}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypotheses) != 5 || res.Stats.NegativeRejections != 0 {
		t.Errorf("hypotheses = %d, rejections = %d; want 5, 0",
			len(res.Hypotheses), res.Stats.NegativeRejections)
	}
}

// TestNegativeExampleKillsAll: a negative every hypothesis matches
// empties the space — the documented inconsistency error.
func TestNegativeExampleKillsAll(t *testing.T) {
	tr := trace.PaperFigure2()
	// All four tasks executing violates nothing: every most-specific
	// hypothesis matches it, so declaring it impossible contradicts
	// the positives.
	neg := negPeriod("t1", "t2", "t3", "t4")
	_, err := Learn(tr, Options{Negatives: []*trace.Period{neg}})
	if !errors.Is(err, ErrNoHypothesis) {
		t.Fatalf("err = %v, want ErrNoHypothesis", err)
	}
}

// TestNegativeExampleOnline: the online session applies the same
// filter at Result time.
func TestNegativeExampleOnline(t *testing.T) {
	tr := trace.PaperFigure2()
	o, err := NewOnline(tr.Tasks, Options{Negatives: []*trace.Period{negPeriod("t1")}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypotheses) != 4 {
		t.Fatalf("hypotheses = %d, want 4", len(res.Hypotheses))
	}
}

// TestNegativeNonMonotonicity documents why the filter must run on the
// final set only: a generalization can make a hypothesis reject a
// negative its ancestor matched.
func TestNegativeNonMonotonicity(t *testing.T) {
	neg := negPeriod("t1") // "t1 never runs alone"
	// The ancestor hypothesis d⊥ matches this (message-free) negative,
	// yet every descendant learned from period 1 rejects it: each of
	// d21, d22, d23 installs an unconditional -> out of t1 that the
	// negative violates. Matching is therefore not monotone along the
	// generalization path, which is why the filter must run on the
	// final set: killing d⊥ up front would have lost all three
	// consistent results.
	tr := trace.PaperFigure2().Slice(0, 1)
	res, err := Learn(tr, Options{Negatives: []*trace.Period{neg}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypotheses) != 3 {
		t.Fatalf("hypotheses = %d, want 3 (all reject the negative)", len(res.Hypotheses))
	}
	// On the empty trace the only candidate IS d⊥, so the same
	// negative is a genuine contradiction there.
	_, err = Learn(trace.New(tr.Tasks), Options{Negatives: []*trace.Period{neg}})
	if !errors.Is(err, ErrNoHypothesis) {
		t.Fatalf("empty trace with contradicting negative: err = %v", err)
	}
}
