package drift

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/engine"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// stationaryPeriod is the canonical two-task period: t1 sends m1 to
// t2 (the only timing-feasible pair).
func stationaryPeriod(i int) *trace.Period {
	base := int64(i) * 1000
	return &trace.Period{
		Index: i,
		Execs: map[string]trace.Interval{
			"t1": {Start: base, End: base + 100},
			"t2": {Start: base + 400, End: base + 500},
		},
		Msgs: []trace.Message{{ID: "m1", Rise: base + 150, Fall: base + 200}},
	}
}

// flippedPeriod is the post-change regime: t1 runs alone, the message
// and t2 are gone — every such period violates a converged t1→t2
// model.
func flippedPeriod(i int) *trace.Period {
	base := int64(i) * 1000
	return &trace.Period{
		Index: i,
		Execs: map[string]trace.Interval{"t1": {Start: base, End: base + 100}},
	}
}

// session wires an online learner to a fresh monitor through the
// engine's per-period verify-outcome hook, mirroring internal/serve.
type session struct {
	o   *learner.Online
	mon *Monitor
	evs []*Event
}

func newSession(t *testing.T, cfg Config) *session {
	t.Helper()
	s := &session{mon: New(cfg)}
	o, err := learner.NewOnline([]string{"t1", "t2"}, learner.Options{
		OnPeriodVerify: func(out engine.VerifyOutcome) {
			if ev := s.mon.Observe(out.Period, out.LUB, out.Live); ev != nil {
				s.evs = append(s.evs, ev)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.o = o
	return s
}

func (s *session) feed(t *testing.T, ps ...*trace.Period) {
	t.Helper()
	for _, p := range ps {
		if err := s.o.AddPeriod(p); err != nil {
			t.Fatalf("period %d: %v", p.Index, err)
		}
	}
}

func stationary(n int) []*trace.Period {
	ps := make([]*trace.Period, n)
	for i := range ps {
		ps[i] = stationaryPeriod(i + 1)
	}
	return ps
}

func TestStationaryNeverAlarms(t *testing.T) {
	s := newSession(t, Config{})
	s.feed(t, stationary(60)...)
	if len(s.evs) != 0 {
		t.Fatalf("stationary stream raised %d alarms: %+v", len(s.evs), s.evs)
	}
	m := s.mon
	if m.Generation() != 1 || m.Alarms() != 0 {
		t.Fatalf("generation %d alarms %d, want 1/0", m.Generation(), m.Alarms())
	}
	if !m.Converged() {
		t.Fatal("monitor never froze a reference on a stable model")
	}
	// The model stabilizes after period 1, so 59 of the 60 periods
	// extend the streak.
	if m.Streak() != 59 {
		t.Fatalf("streak %d, want 59", m.Streak())
	}
	if r := m.AmbiguityRatio(); r != 0 {
		t.Fatalf("ambiguity ratio %v on an unconditional model", r)
	}
	if m.Periods() != 60 {
		t.Fatalf("periods %d, want 60", m.Periods())
	}
}

func TestFlipDetectedWithinWindow(t *testing.T) {
	const flipAt = 30 // periods 1..30 stationary, 31.. flipped
	s := newSession(t, Config{})
	s.feed(t, stationary(flipAt)...)
	for i := flipAt + 1; i <= flipAt+25; i++ {
		s.feed(t, flippedPeriod(i))
	}
	if len(s.evs) != 1 {
		t.Fatalf("got %d alarms, want exactly 1: %+v", len(s.evs), s.evs)
	}
	ev := s.evs[0]
	if ev.ChangePoint != flipAt+1 {
		t.Errorf("change point %d, want %d", ev.ChangePoint, flipAt+1)
	}
	if lag := ev.Period - (flipAt + 1); lag < 0 || lag > 20 {
		t.Errorf("detection lag %d periods (alarm at %d), want within 20 of the flip", lag, ev.Period)
	}
	if ev.Generation != 2 || s.mon.Generation() != 2 {
		t.Errorf("generation event=%d monitor=%d, want 2/2", ev.Generation, s.mon.Generation())
	}
	if ev.Archived == "" {
		t.Error("alarm archived no reference model")
	}
	arch := s.mon.Archived()
	if len(arch) != 1 || arch[0].Generation != 1 || arch[0].Table != ev.Archived {
		t.Errorf("archive = %+v", arch)
	}
	// The relaxed post-flip model is stationary again: the monitor
	// must re-converge without further alarms.
	if !s.mon.Converged() {
		t.Error("generation 2 never re-converged on the post-flip regime")
	}
	ref, err := depfunc.ParseTable(s.mon.State().Reference)
	if err != nil {
		t.Fatalf("generation-2 reference unparsable: %v", err)
	}
	if !depfunc.Match(ref, flippedPeriod(99), depfunc.CandidatePolicy{}) {
		t.Error("generation-2 reference rejects the new regime")
	}
}

func TestIsolatedFailureDoesNotAlarm(t *testing.T) {
	// One odd period after convergence: the learner relaxes, the
	// stream returns to normal. Page–Hinkley must absorb it.
	s := newSession(t, Config{})
	s.feed(t, stationary(20)...)
	s.feed(t, flippedPeriod(21))
	for i := 22; i <= 60; i++ {
		s.feed(t, stationaryPeriod(i))
	}
	if len(s.evs) != 0 {
		t.Fatalf("isolated deviation alarmed: %+v", s.evs[0])
	}
	if s.mon.Generation() != 1 {
		t.Fatalf("generation %d, want 1", s.mon.Generation())
	}
	// The deviation forced a relaxation, so the re-frozen model is
	// conditional now.
	if r := s.mon.AmbiguityRatio(); r == 0 {
		t.Error("ambiguity ratio still 0 after a forced relaxation")
	}
}

func TestForceAlarm(t *testing.T) {
	s := newSession(t, Config{})
	s.feed(t, stationary(10)...)
	ev := s.mon.ForceAlarm()
	if !ev.Forced || ev.Generation != 2 || ev.ChangePoint != 11 {
		t.Fatalf("forced event = %+v", ev)
	}
	if s.mon.Generation() != 2 || s.mon.Converged() {
		t.Fatalf("monitor after force: gen %d converged %v", s.mon.Generation(), s.mon.Converged())
	}
	if len(s.mon.Archived()) != 1 {
		t.Fatalf("archive = %+v", s.mon.Archived())
	}
}

func TestArchiveBounded(t *testing.T) {
	m := New(Config{MaxArchived: 2})
	lub := depfunc.Bottom(depfunc.MustTaskSet("t1", "t2"))
	for g := 0; g < 5; g++ {
		for i := 0; i < DefaultConvergeAfter+1; i++ {
			m.Observe(stationaryPeriod(m.Periods()+1), lub, 1)
		}
		if !m.Converged() {
			t.Fatalf("gen %d never froze", g+1)
		}
		m.ForceAlarm()
	}
	if len(m.Archived()) != 2 {
		t.Fatalf("archive holds %d models, want 2", len(m.Archived()))
	}
	if m.Archived()[1].Generation != 5 {
		t.Fatalf("newest archived generation %d, want 5", m.Archived()[1].Generation)
	}
}

// TestStateRoundTrip checkpoints the monitor at every period of a
// stationary-then-flipped run and verifies that (a) State survives a
// JSON round trip bit-identically and (b) a restored monitor observes
// the rest of the stream exactly like the original.
func TestStateRoundTrip(t *testing.T) {
	const flipAt = 25
	var periods []*trace.Period
	periods = append(periods, stationary(flipAt)...)
	for i := flipAt + 1; i <= flipAt+15; i++ {
		periods = append(periods, flippedPeriod(i))
	}

	s := newSession(t, Config{})
	var restored *Monitor
	for k, p := range periods {
		s.feed(t, p)
		st := s.mon.State()
		raw, err := json.Marshal(st)
		if err != nil {
			t.Fatalf("period %d: marshal: %v", k, err)
		}
		var back State
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("period %d: unmarshal: %v", k, err)
		}
		if !reflect.DeepEqual(st, back) {
			t.Fatalf("period %d: state changed across JSON:\n%+v\n%+v", k, st, back)
		}
		m2, err := Restore(back, Config{})
		if err != nil {
			t.Fatalf("period %d: restore: %v", k, err)
		}
		if got := m2.State(); !reflect.DeepEqual(st, got) {
			t.Fatalf("period %d: restored state differs:\n%+v\n%+v", k, st, got)
		}
		if k == flipAt+4 { // mid-detection: accumulator partly charged
			restored = m2
		}
	}

	// Drive the restored mid-detection monitor over the same tail the
	// original saw; every subsequent state must match, including the
	// alarm.
	fresh := newSession(t, Config{})
	for k, p := range periods {
		fresh.feed(t, p)
		if restored != nil && k > flipAt+4 {
			restored.Observe(p, mustLUB(t, fresh.o), fresh.o.WorkingSetSize())
			if a, b := fresh.mon.State(), restored.State(); !reflect.DeepEqual(a, b) {
				t.Fatalf("period %d: restored monitor diverged:\n%+v\n%+v", k, a, b)
			}
		}
	}
	if restored.Generation() != 2 {
		t.Fatalf("restored monitor ended at generation %d, want 2", restored.Generation())
	}
}

func mustLUB(t *testing.T, o *learner.Online) *depfunc.DepFunc {
	t.Helper()
	res, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res.LUB
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	if _, err := Restore(State{Generation: 1, Fingerprint: "zz"}, Config{}); err == nil {
		t.Error("bad fingerprint accepted")
	}
	if _, err := Restore(State{Generation: 1, Reference: "not a table"}, Config{}); err == nil {
		t.Error("bad reference table accepted")
	}
	if _, err := Restore(State{Generation: 1, Converged: true}, Config{}); err == nil {
		t.Error("converged-without-reference accepted")
	}
	st := State{Generation: 1, Reference: depfunc.Bottom(depfunc.MustTaskSet("a", "b")).Table(),
		ReferenceFingerprint: "0000000000000000"}
	if _, err := Restore(st, Config{}); err == nil {
		t.Error("mismatched reference fingerprint accepted")
	}
}

func TestDefaults(t *testing.T) {
	m := New(Config{})
	cfg := m.Config()
	if cfg.ConvergeAfter != DefaultConvergeAfter || cfg.Delta != DefaultDelta ||
		cfg.Lambda != DefaultLambda || cfg.MaxArchived != DefaultMaxArchived {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	// The hard-flip ordering guarantee: the alarm horizon must be
	// shorter than the re-freeze horizon.
	if horizon := cfg.Lambda / (1 - cfg.Delta); float64(cfg.ConvergeAfter) <= horizon+1 {
		t.Fatalf("ConvergeAfter %d too close to alarm horizon %.1f", cfg.ConvergeAfter, horizon)
	}
}
