package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleFile() *File {
	f := New("test")
	f.Config = "lite"
	f.Periods = 10
	f.Seed = 7
	f.Runs = []Run{
		{Name: "bound_4", Bound: 4, Workers: 1, Repetitions: 3, MedianNS: 1_000_000, P95NS: 1_200_000,
			Hypotheses: 2, PeakLive: 8, Merges: 5, AllocBytes: 64_000, Allocs: 900},
		{Name: "bound_16", Bound: 16, Workers: 1, Repetitions: 3, MedianNS: 4_000_000, P95NS: 4_800_000,
			Hypotheses: 1, Converged: true, PeakLive: 16, Merges: 2, AllocBytes: 256_000, Allocs: 3_000},
		{Name: "bound_16_w4", Bound: 16, Workers: 4, SpeedupVsSequential: 1.02,
			Repetitions: 3, MedianNS: 3_900_000, P95NS: 4_700_000,
			Hypotheses: 1, Converged: true, PeakLive: 16, Merges: 2, AllocBytes: 260_000, Allocs: 3_100},
	}
	return f
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	f := sampleFile()
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(f)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Errorf("round trip diverges:\n %s\n %s", a, b)
	}
}

// TestSchemaFields pins the JSON wire names of the schema: renaming a
// field silently invalidates every committed baseline.
func TestSchemaFields(t *testing.T) {
	data, err := json.Marshal(sampleFile())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"schema_version":2`, `"label":"test"`, `"created_at"`,
		`"host"`, `"os"`, `"arch"`, `"cpus"`, `"go_version"`,
		`"config":"lite"`, `"periods":10`, `"seed":7`,
		`"runs"`, `"name":"bound_4"`, `"bound":4`, `"repetitions":3`,
		`"median_ns":1000000`, `"p95_ns":1200000`, `"hypotheses":2`,
		`"converged":true`, `"peak_live":8`, `"merges":5`,
		`"alloc_bytes":64000`, `"allocs":900`,
		`"workers":1`, `"name":"bound_16_w4"`, `"workers":4`,
		`"speedup_vs_sequential":1.02`,
	} {
		if !strings.Contains(string(data), key) {
			t.Errorf("serialized file lacks %s:\n%s", key, data)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*File)
	}{
		{"wrong schema version", func(f *File) { f.SchemaVersion = 99 }},
		{"empty label", func(f *File) { f.Label = "" }},
		{"bad created_at", func(f *File) { f.CreatedAt = "yesterday" }},
		{"incomplete host", func(f *File) { f.Host.GoVersion = "" }},
		{"no runs", func(f *File) { f.Runs = nil }},
		{"unnamed run", func(f *File) { f.Runs[0].Name = "" }},
		{"duplicate run", func(f *File) { f.Runs[1].Name = f.Runs[0].Name }},
		{"zero repetitions", func(f *File) { f.Runs[0].Repetitions = 0 }},
		{"p95 below median", func(f *File) { f.Runs[0].P95NS = f.Runs[0].MedianNS - 1 }},
		{"zero workers", func(f *File) { f.Runs[0].Workers = 0 }},
		{"negative speedup", func(f *File) { f.Runs[2].SpeedupVsSequential = -0.5 }},
	}
	for _, tc := range cases {
		f := sampleFile()
		tc.mutate(f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the file", tc.name)
		}
	}
	if err := sampleFile().Validate(); err != nil {
		t.Errorf("unmutated sample rejected: %v", err)
	}
}

func TestReadFileRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("ReadFile accepted a wrong-version file")
	}
	if _, err := ReadFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("ReadFile accepted a missing file")
	}
}

func TestMeasureAndSummarize(t *testing.T) {
	var sink []byte
	samples := Measure(5, func() {
		sink = make([]byte, 1<<16)
		time.Sleep(time.Millisecond)
	})
	_ = sink
	if len(samples) != 5 {
		t.Fatalf("got %d samples", len(samples))
	}
	for i, s := range samples {
		if s.Elapsed < time.Millisecond {
			t.Errorf("sample %d: elapsed %v below the sleep floor", i, s.Elapsed)
		}
		if s.AllocBytes < 1<<16 {
			t.Errorf("sample %d: alloc delta %d missed the 64 KiB allocation", i, s.AllocBytes)
		}
		if s.Allocs == 0 {
			t.Errorf("sample %d: zero allocation count", i)
		}
	}
	r := Summarize("bound_8", 8, samples)
	if r.Name != "bound_8" || r.Bound != 8 || r.Repetitions != 5 || r.Workers != 1 {
		t.Errorf("summary identity wrong: %+v", r)
	}
	if r.MedianNS <= 0 || r.P95NS < r.MedianNS {
		t.Errorf("summary stats inconsistent: median %d, p95 %d", r.MedianNS, r.P95NS)
	}
}

func TestSummarizeStatistics(t *testing.T) {
	samples := make([]Sample, 0, 20)
	for i := 1; i <= 20; i++ {
		samples = append(samples, Sample{Elapsed: time.Duration(i) * time.Millisecond})
	}
	r := Summarize("x", 0, samples)
	// Sorted 1..20 ms: median index 10 -> 11 ms, p95 = ceil(19)-1 -> 19 ms.
	if r.MedianNS != (11 * time.Millisecond).Nanoseconds() {
		t.Errorf("median = %d", r.MedianNS)
	}
	if r.P95NS != (19 * time.Millisecond).Nanoseconds() {
		t.Errorf("p95 = %d", r.P95NS)
	}
}

// TestCompareFlagsSlowdown is the acceptance gate: a synthetic 2×
// slowdown of one bound must be flagged at a 10% threshold, and an
// identical file must pass.
func TestCompareFlagsSlowdown(t *testing.T) {
	baseline := sampleFile()
	current := sampleFile()
	if regs := Compare(baseline, current, 0.10); len(regs) != 0 {
		t.Fatalf("identical files flagged: %v", regs)
	}

	current.Runs[1].MedianNS *= 2
	current.Runs[1].P95NS *= 2
	regs := Compare(baseline, current, 0.10)
	if len(regs) != 2 {
		t.Fatalf("2x slowdown: got %d regressions %v, want median+p95 of bound_16", len(regs), regs)
	}
	for _, r := range regs {
		if r.Run != "bound_16" {
			t.Errorf("regression on wrong run: %+v", r)
		}
		if r.Ratio < 1.99 || r.Ratio > 2.01 {
			t.Errorf("ratio %.3f, want ~2", r.Ratio)
		}
	}
	if s := regs[0].String(); !strings.Contains(s, "bound_16") || !strings.Contains(s, "2.00x") {
		t.Errorf("regression rendering %q", s)
	}

	// Below-threshold jitter must not trip the gate.
	current = sampleFile()
	current.Runs[0].MedianNS = baseline.Runs[0].MedianNS * 105 / 100
	if regs := Compare(baseline, current, 0.10); len(regs) != 0 {
		t.Errorf("5%% jitter flagged at 10%% threshold: %v", regs)
	}

	// Runs only present on one side are ignored.
	current = sampleFile()
	current.Runs = current.Runs[:1]
	current.Runs[0].Name = "bound_999"
	if regs := Compare(baseline, current, 0.10); len(regs) != 0 {
		t.Errorf("unmatched runs compared: %v", regs)
	}
}

func TestParseThreshold(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{"10%", 0.10, true},
		{"2.5%", 0.025, true},
		{"0.1", 0.1, true},
		{" 15% ", 0.15, true},
		{"0", 0, true},
		{"-5%", 0, false},
		{"fast", 0, false},
		{"%", 0, false},
	} {
		got, err := ParseThreshold(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseThreshold(%q): err = %v", tc.in, err)
			continue
		}
		if tc.ok && (got < tc.want-1e-9 || got > tc.want+1e-9) {
			t.Errorf("ParseThreshold(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNewHostPopulated(t *testing.T) {
	h := NewHost()
	if h.OS == "" || h.Arch == "" || h.CPUs <= 0 || !strings.HasPrefix(h.GoVersion, "go") {
		t.Errorf("host metadata incomplete: %+v", h)
	}
}
