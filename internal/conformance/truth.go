package conformance

import (
	"fmt"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/model"
)

// TruthFromModel computes the true dependency function of a design
// model by exhaustively enumerating disjunction resolutions, the same
// enumeration model.MustExecutePairs uses for must-execute ground
// truth. For an ordered pair (a, b):
//
//   - d(a, b) = → if in every resolution where a fires it sends a
//     message to b, →? if it does so in some but not all, and
//   - d(a, b) = ← if in every resolution where a fires it receives a
//     message from b, ←? if in some but not all;
//
// contributions from both directions are joined (↔ variants can only
// arise from cyclic designs, which the model validator rejects). Pairs
// never related by a message are ‖.
//
// Enumeration is abandoned (ok = false) when the model carries more
// than maxChoiceBits bits of disjunction nondeterminism, or when the
// model uses sync broadcast frames: a broadcast has no single true
// receiver, so no point-to-point dependency function describes it and
// Theorem 2 does not apply as stated.
func TruthFromModel(m *model.Model, maxChoiceBits int) (*depfunc.DepFunc, bool) {
	for _, t := range m.Tasks {
		if t.EmitsSync || t.WaitsSync {
			return nil, false
		}
	}
	res, ok := enumerateResolutions(m, maxChoiceBits)
	if !ok {
		return nil, false
	}
	ts, err := depfunc.NewTaskSet(m.TaskNames())
	if err != nil {
		return nil, false
	}
	d := depfunc.Bottom(ts)
	n := ts.Len()
	for i := 0; i < n; i++ {
		a := ts.Name(i)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			b := ts.Name(j)
			v := lattice.Join(
				directional(res, a, b, lattice.Fwd, lattice.FwdMaybe, sendsView),
				directional(res, a, b, lattice.Bwd, lattice.BwdMaybe, receivesView))
			d.Set(i, j, v)
		}
	}
	return d, true
}

// resolution is one resolved firing of the model: which tasks fired
// and which (sender, receiver) messages were exchanged.
type resolution struct {
	fired map[string]bool
	sent  map[[2]string]bool
}

// sendsView asks whether a sent to b in the resolution.
func sendsView(r resolution, a, b string) bool { return r.sent[[2]string{a, b}] }

// receivesView asks whether a received from b in the resolution.
func receivesView(r resolution, a, b string) bool { return r.sent[[2]string{b, a}] }

// directional folds one direction of the dependency over all
// resolutions: firm when the relation holds every time a fires, maybe
// when it holds sometimes, ‖ when never.
func directional(res []resolution, a, b string, firm, maybe lattice.Value,
	related func(resolution, string, string) bool) lattice.Value {

	fires, holds := 0, 0
	for _, r := range res {
		if !r.fired[a] {
			continue
		}
		fires++
		if related(r, a, b) {
			holds++
		}
	}
	switch {
	case fires == 0 || holds == 0:
		return lattice.Par
	case holds == fires:
		return firm
	default:
		return maybe
	}
}

// enumerateResolutions walks every combination of disjunction choices
// (each disjunction node picks a nonempty subset of its out-edges, as
// model.Fire does) and evaluates the resulting firing plan.
func enumerateResolutions(m *model.Model, maxChoiceBits int) ([]resolution, bool) {
	var disj []string
	bits := 0
	for _, t := range m.Tasks {
		if t.Kind == model.Disjunction {
			disj = append(disj, t.Name)
			bits += len(m.OutEdges(t.Name))
		}
	}
	if bits > maxChoiceBits {
		return nil, false
	}
	order, err := topoOrder(m)
	if err != nil {
		return nil, false
	}
	var out []resolution
	choice := map[int]bool{} // CAN ID -> edge chosen
	var enumerate func(i int)
	evaluate := func() {
		r := resolution{fired: map[string]bool{}, sent: map[[2]string]bool{}}
		incoming := map[string]bool{}
		for _, name := range order {
			t := m.Task(name)
			if !t.Source && !incoming[name] {
				continue
			}
			r.fired[name] = true
			for _, e := range m.OutEdges(name) {
				if t.Kind != model.Disjunction || choice[e.CANID] {
					incoming[e.To] = true
					r.sent[[2]string{e.From, e.To}] = true
				}
			}
		}
		out = append(out, r)
	}
	enumerate = func(i int) {
		if i == len(disj) {
			evaluate()
			return
		}
		outs := m.OutEdges(disj[i])
		for mask := 1; mask < 1<<len(outs); mask++ {
			for k, e := range outs {
				choice[e.CANID] = mask&(1<<k) != 0
			}
			enumerate(i + 1)
		}
		for _, e := range outs {
			delete(choice, e.CANID)
		}
	}
	enumerate(0)
	return out, true
}

// topoOrder is a local topological sort over the design DAG (the
// model's own topoOrder is unexported). The validator guarantees
// acyclicity, so failure here means a broken model.
func topoOrder(m *model.Model) ([]string, error) {
	indeg := map[string]int{}
	for _, t := range m.Tasks {
		indeg[t.Name] = len(m.InEdges(t.Name))
	}
	var queue, order []string
	for _, t := range m.Tasks {
		if indeg[t.Name] == 0 {
			queue = append(queue, t.Name)
		}
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		order = append(order, name)
		for _, e := range m.OutEdges(name) {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != len(m.Tasks) {
		return nil, fmt.Errorf("conformance: design graph has a cycle")
	}
	return order, nil
}
