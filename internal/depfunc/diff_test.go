package depfunc

import (
	"strings"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/lattice"
)

func TestDiffEmpty(t *testing.T) {
	a := Bottom(ts4())
	if got := Diff(a, a.Clone()); len(got) != 0 {
		t.Errorf("Diff of equals = %v", got)
	}
}

func TestDiffReportsEntries(t *testing.T) {
	a := Bottom(ts4())
	b := a.Clone()
	b.Set(0, 1, lattice.Fwd)
	b.Set(3, 2, lattice.BwdMaybe)
	got := Diff(a, b)
	if len(got) != 2 {
		t.Fatalf("Diff = %v", got)
	}
	// Row-major order: (t1,t2) before (t4,t3).
	if got[0].From != "t1" || got[0].To != "t2" || got[0].B != lattice.Fwd {
		t.Errorf("first diff = %+v", got[0])
	}
	if got[1].From != "t4" || got[1].To != "t3" {
		t.Errorf("second diff = %+v", got[1])
	}
	if s := got[0].String(); !strings.Contains(s, "d(t1,t2)") || !strings.Contains(s, "->") {
		t.Errorf("diff string = %q", s)
	}
}

func TestDiffPanicsOnDifferentTaskSets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Diff(Bottom(ts4()), Bottom(MustTaskSet("x", "y")))
}

func TestHistogramAndSummary(t *testing.T) {
	d := MustParseTable(`
      a     b     c
a     ||    ->    ->?
b     <-    ||    ||
c     <-?   ||    ||
`)
	h := d.Histogram()
	if h[lattice.Par] != 2 || h[lattice.Fwd] != 1 || h[lattice.Bwd] != 1 ||
		h[lattice.FwdMaybe] != 1 || h[lattice.BwdMaybe] != 1 {
		t.Errorf("histogram = %v", h)
	}
	s := d.Summary()
	for _, want := range []string{"||:2", "->:1", "<-:1", "->?:1", "<-?:1"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
