// Package engine is the period-processing core of the learner: the
// candidate-enumeration, per-message generalization and end-of-period
// post-processing stages of Feng et al.'s algorithm (DATE 2007,
// Section 3), factored out of the batch/online front-ends so both
// drive the identical machinery.
//
// # Stage API
//
// An Engine holds the mutable run state (working hypothesis set,
// cumulative execution-violation history, statistics). Each period is
// consumed by three explicit stages:
//
//  1. EnumerateCandidates — timing-feasible (sender, receiver) pairs
//     per message, plus the live-suffix sets used to forget dead
//     assumptions early.
//  2. Generalize — the message-guided generalization pass: every live
//     hypothesis is extended by every admissible candidate
//     assumption, with heuristic least-upper-bound merging when a
//     bound is configured.
//  3. Postprocess — end-of-period relaxation of violated
//     unconditional entries, assumption clearing, unification and
//     most-specific pruning, and the history update.
//
// ProcessPeriod composes the three in order and emits the period
// envelope events. Front-ends (internal/learner's Learn and Online)
// are thin wrappers that own result assembly and verification.
//
// # Parallelism and determinism
//
// With Config.Workers > 1 each generalize stage spawns one worker
// pool and, per message, partitions the live hypothesis set into
// Workers contiguous chunks: child generation for each parent is
// independent (Assume never mutates the parent or any shared state),
// each chunk fills its own reusable flat child buffer, and because
// the chunks tile the parent list in order, the result is gathered
// strictly in (parent, candidate-pair) order — the exact order the
// sequential loop produces. Deduplication, statistics, observer
// events and bounded merging all happen during the sequential gather,
// so the output is bit-identical to the sequential path for any
// worker count, in both the exact and the bounded mode. Workers <= 1
// selects the allocation-lean sequential loop.
//
// # Fingerprints
//
// All deduplication sites key on the 64-bit Zobrist fingerprints
// maintained incrementally by depfunc and hypothesis instead of the
// O(t²) canonical key strings. Unequal fingerprints prove unequal
// states; a fingerprint hit is confirmed with a full equality check
// before unifying, so a (cosmically unlikely) collision costs one
// comparison, never a wrong merge.
package engine

import (
	"errors"
	"fmt"
	"time"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/hypothesis"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// ErrNoHypothesis is returned when the hypothesis set becomes empty:
// either the trace violates the assumed model of computation, or the
// generalization language cannot express the observed behaviour
// (Section 3.1). The message keeps the historical "learner:" prefix:
// the error predates the engine split and is part of the public
// surface re-exported by internal/learner and the modelgen facade.
var ErrNoHypothesis = errors.New("learner: hypothesis set became empty")

// ErrTooManyHypotheses is returned by the exact algorithm when the
// working set exceeds Config.MaxHypotheses.
var ErrTooManyHypotheses = errors.New("learner: hypothesis set exceeded the configured maximum")

// Config configures an Engine. It is the engine-facing subset of the
// learner's Options; the front-ends translate.
type Config struct {
	// Bound is the heuristic's maximum working-set size b. Zero (or
	// negative) selects the exact algorithm.
	Bound int

	// Policy controls timing-based candidate-pair computation.
	Policy depfunc.CandidatePolicy

	// EagerPrune keeps only the minimal children one parent spawns
	// for one message (strict reading of generalization condition 4).
	EagerPrune bool

	// MaxHypotheses aborts the exact algorithm with
	// ErrTooManyHypotheses when the working set grows beyond this
	// size. Zero means unlimited.
	MaxHypotheses int

	// Workers is the size of the per-message fan-out worker pool.
	// Values <= 1 select the sequential path. Results are identical
	// for every value (see the package comment).
	Workers int

	// PeriodLiveCap bounds the Stats.PeriodLive series to the most
	// recent N periods (older entries are discarded). Zero keeps the
	// full series — right for batch runs; long-running online
	// sessions (internal/serve) set a cap so session memory stays
	// bounded.
	PeriodLiveCap int

	// Observer receives the structured run-trace; nil disables
	// emission at zero cost.
	Observer obs.Observer

	// Provenance enables per-hypothesis derivation recording.
	Provenance bool

	// OnPeriodVerify, when non-nil, receives one VerifyOutcome after
	// every successfully processed period: whether the period matched
	// the model as it stood when the period arrived, plus the
	// post-period frontier LUB — the online analogue of re-running
	// Definition 3 against each new instance. Drift monitors
	// (internal/drift) hook here. Nil disables the extra Match and
	// JoinAll work entirely.
	OnPeriodVerify func(VerifyOutcome)
}

// VerifyOutcome is the per-period verification report delivered to
// Config.OnPeriodVerify.
type VerifyOutcome struct {
	// Period is the period just consumed (engine-owned; hooks must
	// treat it as read-only and not retain it past the call).
	Period *trace.Period
	// Verified reports whether the period matched the pre-period LUB
	// of the working set under the matching function M. The first
	// periods of a session virtually always fail this check (the
	// model is still ⊥-ish); sustained failures after convergence are
	// the drift signal.
	Verified bool
	// LUB is the post-period least upper bound of the working set — a
	// fresh DepFunc the hook may keep.
	LUB *depfunc.DepFunc
	// Live is the post-period working-set size.
	Live int
}

// Stats instruments a run. The engine maintains the per-period
// counters; the front-ends fill in the result-assembly fields
// (Final, DroppedUnsound, NegativeRejections, Elapsed).
type Stats struct {
	Periods        int // periods processed
	Messages       int // message occurrences processed
	Candidates     int // timing-feasible candidate pairs summed over messages
	Children       int // hypotheses created by generalization
	Merges         int // heuristic least-upper-bound merges
	Relaxations    int // entries relaxed by end-of-period tests
	Peak           int // peak working-set size
	Final          int // hypotheses in the returned set
	DroppedUnsound int // results dropped by verification
	// NegativeRejections counts final hypotheses discarded because
	// they matched a forbidden behaviour.
	NegativeRejections int
	// PeriodLive records the live hypothesis count at the end of each
	// processed period, in order (the per-period series behind Peak).
	// With Config.PeriodLiveCap set, only the most recent N entries
	// are kept.
	PeriodLive []int
	// Elapsed is the wall time of the batch Learn call (zero for
	// Online.Result snapshots, which have no defined start).
	Elapsed time.Duration
}

// Engine is the period-processing core: the working hypothesis set
// D_cur, the cumulative execution-violation history and the run
// statistics. It is not safe for concurrent use by multiple
// goroutines (its internal worker pool is an implementation detail of
// a single ProcessPeriod call).
type Engine struct {
	ts    *depfunc.TaskSet
	cfg   Config
	hist  []bool
	cur   []*hypothesis.Hypothesis
	stats Stats
	// base is the incremental-checkpoint capture baseline (delta.go).
	base deltaBase

	// seen is the dedup set reused (via Reset) by every message's
	// gather and by forgetDeadAssumptions; reuse keeps the hot loop
	// free of per-message map allocations.
	seen *hypothesis.Dedup
	// arenas bump-allocate assumption cons cells: one arena per
	// fan-out worker chunk plus arenas[Workers] for the sequential
	// path, the gather's merges and assumption forgetting. All are
	// reset at the period boundary, right after ClearAssumptions has
	// severed every surviving reference.
	arenas []*hypothesis.Arena
	// scratch is the sequential fan-out's reusable child buffer.
	scratch []*hypothesis.Hypothesis
}

// mainArena returns the arena of the engine's own goroutine (the
// sequential fan-out, gather and postprocess paths).
func (e *Engine) mainArena() *hypothesis.Arena { return e.arenas[e.cfg.Workers] }

// New starts an engine session over the task set: the working set is
// {d⊥}. It announces the session to the observer with an EngineStart
// event carrying the effective worker count and bound.
func New(ts *depfunc.TaskSet, cfg Config) *Engine {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	bottom := hypothesis.Bottom(ts)
	if cfg.Provenance {
		bottom.EnableProvenance()
	}
	e := &Engine{
		ts:     ts,
		cfg:    cfg,
		hist:   make([]bool, ts.Len()*ts.Len()),
		cur:    []*hypothesis.Hypothesis{bottom},
		seen:   hypothesis.NewDedup(),
		arenas: make([]*hypothesis.Arena, cfg.Workers+1),
	}
	for i := range e.arenas {
		e.arenas[i] = new(hypothesis.Arena)
	}
	e.stats.Peak = 1
	e.resetDeltaBase()
	if cfg.Observer != nil {
		cfg.Observer.OnEngineStart(obs.EngineStart{Workers: cfg.Workers, Bound: cfg.Bound})
	}
	return e
}

// TaskSet returns the session's task set.
func (e *Engine) TaskSet() *depfunc.TaskSet { return e.ts }

// Stats returns a snapshot of the instrumentation counters.
func (e *Engine) Stats() Stats { return e.stats }

// Working returns the live hypothesis set (not a copy; callers must
// not mutate it).
func (e *Engine) Working() []*hypothesis.Hypothesis { return e.cur }

// WorkingSetSize returns the current number of live hypotheses.
func (e *Engine) WorkingSetSize() int { return len(e.cur) }

// ProcessPeriod consumes one instance: the candidate, generalize and
// postprocess stages in order, wrapped in the period envelope events.
// On error the engine's working set is no longer a consistent prefix
// of the instance stream; the caller owns making the session sticky.
func (e *Engine) ProcessPeriod(p *trace.Period) error {
	obsv := e.cfg.Observer
	if obsv != nil {
		obsv.OnPeriodStart(obs.PeriodStart{Period: p.Index, Messages: len(p.Msgs)})
	}
	var pre *depfunc.DepFunc
	if e.cfg.OnPeriodVerify != nil {
		pre = e.lub()
	}
	executed := execVector(p, e.ts)
	cands, live := e.EnumerateCandidates(p)
	if err := e.Generalize(p, cands, live); err != nil {
		return err
	}
	relaxed, dropped := e.Postprocess(p, executed)
	e.stats.Periods++
	if cap := e.cfg.PeriodLiveCap; cap > 0 && len(e.stats.PeriodLive) >= cap {
		pl := e.stats.PeriodLive
		copy(pl, pl[len(pl)-cap+1:])
		e.stats.PeriodLive = append(pl[:cap-1], len(e.cur))
	} else {
		e.stats.PeriodLive = append(e.stats.PeriodLive, len(e.cur))
	}
	if obsv != nil {
		// Postprocess leaves the survivors sorted by ascending
		// weight, so the weight range is at the ends.
		obsv.OnPeriodEnd(obs.PeriodEnd{
			Period:      p.Index,
			Live:        len(e.cur),
			Dropped:     dropped,
			WeightMin:   e.cur[0].Weight(),
			WeightMax:   e.cur[len(e.cur)-1].Weight(),
			Relaxations: relaxed,
		})
	}
	if hook := e.cfg.OnPeriodVerify; hook != nil {
		sp := obs.StartSpan(obsv, obs.PhaseDriftVerify)
		out := VerifyOutcome{
			Period:   p,
			Verified: depfunc.Match(pre, p, e.cfg.Policy),
			LUB:      e.lub(),
			Live:     len(e.cur),
		}
		sp.End()
		hook(out)
	}
	return nil
}

// lub returns the pointwise least upper bound of the working set as a
// fresh dependency function.
func (e *Engine) lub() *depfunc.DepFunc {
	ds := make([]*depfunc.DepFunc, len(e.cur))
	for i, h := range e.cur {
		ds[i] = &h.D
	}
	return depfunc.JoinAll(ds)
}

// EnumerateCandidates computes the timing-feasible candidate pairs of
// every message of the period and the live-suffix sets behind early
// assumption forgetting, under the "candidates" span.
func (e *Engine) EnumerateCandidates(p *trace.Period) ([][]depfunc.Pair, []map[depfunc.Pair]bool) {
	sp := obs.StartSpan(e.cfg.Observer, obs.PhaseCandidates)
	cands := depfunc.Candidates(p, e.ts, e.cfg.Policy)
	live := liveSuffixes(cands)
	sp.End()
	return cands, live
}

// Generalize runs the message-guided generalization pass over the
// period, under the "generalize" span. cands and live must come from
// EnumerateCandidates on the same period.
func (e *Engine) Generalize(p *trace.Period, cands [][]depfunc.Pair, live []map[depfunc.Pair]bool) error {
	obsv := e.cfg.Observer
	sp := obs.StartSpan(obsv, obs.PhaseGeneralize)
	var pool *fanPool
	if e.cfg.Workers > 1 {
		pool = e.newFanPool()
		defer pool.close()
	}
	cur := e.cur
	for mi := range p.Msgs {
		next, err := e.generalizeMessage(pool, cur, cands[mi], p.Index, mi, p.Msgs[mi].ID)
		if err != nil {
			sp.End()
			return fmt.Errorf("%w (period %d, message %q)", err, p.Index, p.Msgs[mi].ID)
		}
		if mi > 0 {
			// cur is an intermediate generation created within this
			// period and superseded by next: nothing else references
			// it (e.cur still holds the period-entry set; children
			// share parent buffers only through the refcount), so its
			// matrices go back to the arena.
			for _, h := range cur {
				h.Release()
			}
		}
		cur = e.forgetDeadAssumptions(next, live[mi+1])
		e.stats.Messages++
		e.stats.Candidates += len(cands[mi])
		if len(cur) > e.stats.Peak {
			e.stats.Peak = len(cur)
		}
		if obsv != nil {
			obsv.OnMessageProcessed(obs.MessageProcessed{
				Period: p.Index, Index: mi, ID: p.Msgs[mi].ID,
				Candidates: len(cands[mi]), Live: len(cur),
			})
		}
	}
	sp.End()
	e.cur = cur
	return nil
}

// Postprocess runs the end-of-period pass under the "postprocess"
// span: relax violated unconditional entries, clear assumptions,
// unify and prune to the most specific set, update the cumulative
// history. It returns the relaxed-entry count and the number of
// hypotheses dropped by pruning.
func (e *Engine) Postprocess(p *trace.Period, executed []bool) (relaxed, dropped int) {
	sp := obs.StartSpan(e.cfg.Observer, obs.PhasePostprocess)
	endCtx := hypothesis.StepCtx{Period: p.Index, Msg: -1}
	for _, h := range e.cur {
		relaxed += h.Relax(func(i int) bool { return executed[i] }, endCtx)
		h.ClearAssumptions()
	}
	e.stats.Relaxations += relaxed
	// Every surviving assumption list was just cleared and no other
	// holder outlives the period, so the cons-cell arenas can recycle
	// wholesale.
	for _, ar := range e.arenas {
		ar.Reset()
	}
	before := len(e.cur)
	e.cur = PruneMostSpecific(e.cur, e.cfg.Observer, p.Index)
	updateHistory(e.hist, executed, e.ts.Len())
	sp.End()
	return relaxed, before - len(e.cur)
}

// generalizeMessage extends every hypothesis in cur by every
// admissible candidate assumption for one message, applying heuristic
// merging when a bound is set. Child generation shards across the
// stage's worker pool when one is supplied; gathering is always
// sequential in (parent, pair) order, so the result does not depend on
// Workers.
func (e *Engine) generalizeMessage(pool *fanPool, cur []*hypothesis.Hypothesis, pairs []depfunc.Pair,
	period, msg int, msgID string) ([]*hypothesis.Hypothesis, error) {

	if len(pairs) == 0 {
		return nil, fmt.Errorf("%w: message has no timing-feasible sender/receiver pair", ErrNoHypothesis)
	}
	ctx := hypothesis.StepCtx{Period: period, Msg: msg, MsgID: msgID, Arena: e.mainArena()}
	wl := newWorkList(e.cfg.Bound, &e.stats)
	wl.obsv, wl.ctx = e.cfg.Observer, ctx
	seen := e.seen
	seen.Reset()
	gather := func(children []*hypothesis.Hypothesis) {
		for _, c := range children {
			if seen.Insert(c) {
				// An equal hypothesis is already in the working list;
				// the rejected duplicate was never seen by anyone else,
				// so its matrix goes straight back to the arena.
				c.Release()
				continue
			}
			e.stats.Children++
			if e.cfg.Observer != nil {
				e.cfg.Observer.OnHypothesisSpawned(obs.HypothesisSpawned{
					Period: period, Index: msg, Weight: c.Weight(),
				})
			}
			wl.add(c)
		}
	}

	if pool != nil && len(cur) >= minParallelParents {
		for _, children := range pool.run(cur, pairs, ctx) {
			gather(children)
		}
	} else {
		// Sequential fast path: one engine-owned scratch slice, no
		// per-parent (or per-message) allocation.
		for _, h := range cur {
			e.scratch = e.childrenOf(h, pairs, ctx, e.scratch[:0])
			gather(e.scratch)
		}
	}

	out := wl.items
	// The dedup map is dead from here on: hypotheses the bounded
	// heuristic merged away can no longer be consulted by any equality
	// check, so their matrices are safe to recycle.
	wl.releaseRetired()
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no hypothesis can explain the message", ErrNoHypothesis)
	}
	if e.cfg.Bound <= 0 && e.cfg.MaxHypotheses > 0 && len(out) > e.cfg.MaxHypotheses {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyHypotheses, len(out), e.cfg.MaxHypotheses)
	}
	return out, nil
}

// childrenOf appends the admissible children of one parent for one
// message to dst (a scratch slice on the sequential path, a chunk
// buffer holding earlier parents' children on the parallel one; eager
// pruning is confined to the new segment either way). It reads only
// immutable shared state (hist is frozen during the generalize stage),
// so concurrent calls on distinct parents are safe.
func (e *Engine) childrenOf(h *hypothesis.Hypothesis, pairs []depfunc.Pair,
	ctx hypothesis.StepCtx, dst []*hypothesis.Hypothesis) []*hypothesis.Hypothesis {

	n := e.ts.Len()
	base := len(dst)
	for _, pr := range pairs {
		fwd := lattice.Fwd
		if e.hist[pr.S*n+pr.R] {
			fwd = lattice.FwdMaybe
		}
		bwd := lattice.Bwd
		if e.hist[pr.R*n+pr.S] {
			bwd = lattice.BwdMaybe
		}
		if c := h.Assume(pr, fwd, bwd, ctx); c != nil {
			dst = append(dst, c)
		}
	}
	if e.cfg.EagerPrune {
		kept := minimalChildren(dst[base:])
		dst = dst[:base+len(kept)]
	}
	return dst
}

// liveSuffixes returns, for each message index i, the set of pairs
// appearing in the candidate sets of messages i..end (live[len] is
// empty). After message i is analyzed, assumptions about pairs outside
// live[i+1] can never be consulted again this period.
func liveSuffixes(cands [][]depfunc.Pair) []map[depfunc.Pair]bool {
	live := make([]map[depfunc.Pair]bool, len(cands)+1)
	live[len(cands)] = map[depfunc.Pair]bool{}
	for i := len(cands) - 1; i >= 0; i-- {
		m := make(map[depfunc.Pair]bool, len(live[i+1])+len(cands[i]))
		for p := range live[i+1] {
			m[p] = true
		}
		for _, p := range cands[i] {
			m[p] = true
		}
		live[i] = m
	}
	return live
}

// forgetDeadAssumptions drops assumptions about pairs that no
// remaining message of the period can use, then unifies hypotheses
// that became identical — a pure optimization that preserves the
// algorithm's results (dead assumptions cannot influence any future
// dup-pair check, and assumption sets are discarded at the period
// boundary anyway).
func (e *Engine) forgetDeadAssumptions(hs []*hypothesis.Hypothesis, live map[depfunc.Pair]bool) []*hypothesis.Hypothesis {
	// The message's gather is finished with e.seen (releaseRetired has
	// run), so the same set is reset and reused here.
	seen := e.seen
	seen.Reset()
	out := hs[:0]
	ar := e.mainArena()
	for _, h := range hs {
		h.RetainAssumptions(func(p depfunc.Pair) bool { return live[p] }, ar)
		if !seen.Insert(h) {
			out = append(out, h)
		} else {
			// Unified away, referenced by nothing else: recycle.
			h.Release()
		}
	}
	return out
}

// minimalChildren keeps only the minimal elements (by the pointwise
// order on dependency functions) among the children one parent
// spawned for one message. Children with equal dependency functions
// but different assumptions are all kept. Dominated children are
// fresh, unshared objects, so their matrices are recycled on the
// spot (safe from worker goroutines: the arena is concurrent).
func minimalChildren(children []*hypothesis.Hypothesis) []*hypothesis.Hypothesis {
	dominated := make([]bool, len(children))
	for i, c := range children {
		for j, o := range children {
			if i != j && o.D.Lt(&c.D) {
				dominated[i] = true
				break
			}
		}
	}
	out := children[:0]
	for i, c := range children {
		if !dominated[i] {
			out = append(out, c)
		} else {
			c.Release()
		}
	}
	return out
}

// PruneMostSpecific unifies equal hypotheses and removes redundant
// ones: h is redundant iff some other hypothesis is strictly more
// specific (Section 3.1 post-processing). Removals are reported to
// obsv (reason "duplicate" or "redundant") when it is non-nil.
// Deduplication keys on the dependency-function fingerprint alone:
// assumption sets are already cleared at this point.
func PruneMostSpecific(hs []*hypothesis.Hypothesis, obsv obs.Observer, period int) []*hypothesis.Hypothesis {
	seen := make(map[uint64][]*depfunc.DepFunc, len(hs))
	uniq := make([]*hypothesis.Hypothesis, 0, len(hs))
	for _, h := range hs {
		fp := h.D.Fingerprint()
		dup := false
		for _, o := range seen[fp] {
			if h.D.Equal(o) {
				dup = true
				break
			}
		}
		if !dup {
			seen[fp] = append(seen[fp], &h.D)
			uniq = append(uniq, h)
		} else if obsv != nil {
			obsv.OnHypothesisPruned(obs.HypothesisPruned{
				Period: period, Reason: "duplicate", Weight: h.Weight(),
			})
		}
	}
	// Sort by weight: a hypothesis can only be dominated by a
	// strictly lighter one.
	sortByWeight(uniq)
	out := make([]*hypothesis.Hypothesis, 0, len(uniq))
	for i, h := range uniq {
		redundant := false
		for j := 0; j < i; j++ {
			if uniq[j].Weight() >= h.Weight() {
				break
			}
			if uniq[j].D.Lt(&h.D) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, h)
		} else if obsv != nil {
			obsv.OnHypothesisPruned(obs.HypothesisPruned{
				Period: period, Reason: "redundant", Weight: h.Weight(),
			})
		}
	}
	return out
}

func execVector(p *trace.Period, ts *depfunc.TaskSet) []bool {
	v := make([]bool, ts.Len())
	for name := range p.Execs {
		if i := ts.Index(name); i >= 0 {
			v[i] = true
		}
	}
	return v
}

func updateHistory(hist []bool, executed []bool, n int) {
	for a := 0; a < n; a++ {
		if !executed[a] {
			continue
		}
		for b := 0; b < n; b++ {
			if a != b && !executed[b] {
				hist[a*n+b] = true
			}
		}
	}
}
