package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"time"

	"github.com/blackbox-rt/modelgen/internal/obs"
)

// manifestVersion is the manifest.json schema version.
const manifestVersion = 1

// validIDRe mirrors the serving layer's stream-ID grammar; validID
// additionally rejects the dot-only names the character class admits,
// keeping stream directories from escaping the root.
var validIDRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

func validID(id string) bool {
	return validIDRe.MatchString(id) && id != "." && id != ".." && id != quarantineDir
}

// Options configures a Store.
type Options struct {
	// Dir is the store root; created if absent.
	Dir string
	// CompactRecords triggers compaction once a stream's WAL holds
	// this many records (default 256; negative disables the record
	// trigger).
	CompactRecords int
	// CompactBytes triggers compaction once a stream's WAL reaches
	// this size (default 4 MiB; negative disables the byte trigger).
	CompactBytes int64
	// JitterFrac spreads each stream's compaction thresholds by a
	// deterministic per-stream factor in [1-f, 1+f], so streams
	// created together don't compact in lockstep (default 0.2;
	// negative disables).
	JitterFrac float64
	// Registry receives the modelgen_store_* metrics when non-nil.
	Registry *obs.Registry
	// Logf logs recovery events (torn tails, stale-epoch sweeps,
	// quarantines); nil means silent.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.CompactRecords == 0 {
		o.CompactRecords = 256
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = 4 << 20
	}
	if o.JitterFrac == 0 {
		o.JitterFrac = 0.2
	}
}

// CorruptError reports stream state that failed validation and was
// (or should be) quarantined rather than silently dropped.
type CorruptError struct {
	// Stream is the stream ID, or "" for non-stream files.
	Stream string
	// Path is the offending file or directory.
	Path string
	// Reason is a short human explanation.
	Reason string
	// Err is the underlying decode/IO error, if any.
	Err error
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("store: corrupt state at %s (%s): %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("store: corrupt state at %s: %s", e.Path, e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// manifest is the per-stream commit record: which epoch's base+WAL
// pair is current, and the serving-layer metadata blob.
type manifest struct {
	Version int `json:"version"`
	// Epoch numbers base/WAL file pairs; the manifest rename is the
	// commit point that switches the stream to a new pair.
	Epoch uint64 `json:"epoch"`
	// BasePeriods is the learned-period count folded into the base
	// snapshot; WAL records with Seq <= BasePeriods are stale.
	BasePeriods uint64 `json:"base_periods"`
	// Meta is an opaque serving-layer blob (stream registration info),
	// available without reading the base.
	Meta json.RawMessage `json:"meta,omitempty"`
	// CompactedAtUnixNS is when the current base was written, 0 for a
	// never-compacted stream.
	CompactedAtUnixNS int64 `json:"compacted_at_unix_ns,omitempty"`
}

// Store is a directory of per-stream WAL+base state. All methods are
// safe for concurrent use; per-stream handles (Stream) are not, they
// belong to the stream's owner.
type Store struct {
	dir string
	opt Options

	mRecords     *obs.Counter
	mBytes       *obs.Counter
	mCompactions *obs.Counter
	mHydrations  *obs.Counter
	hHydration   *obs.Histogram
	gDirty       *obs.Gauge

	// crash, when set (tests only), is consulted at named points of
	// the append/compaction sequence; a non-nil return aborts the
	// operation there, simulating a crash.
	crash func(point string) error
}

// Open opens (creating if needed) the store rooted at opt.Dir.
func Open(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, errors.New("store: no directory configured")
	}
	opt.fill()
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st := &Store{dir: opt.Dir, opt: opt}
	if r := opt.Registry; r != nil {
		st.mRecords = r.Counter(obs.MetricStoreWALRecords, "period records appended to stream WALs")
		st.mBytes = r.Counter(obs.MetricStoreWALBytes, "bytes appended to stream WALs, frames included")
		st.mCompactions = r.Counter(obs.MetricStoreCompactions, "WAL-into-base compactions")
		st.mHydrations = r.Counter(obs.MetricStoreHydrations, "lazy stream hydrations")
		st.hHydration = r.Histogram(obs.MetricStoreHydrationSeconds, "stream hydration latency in seconds", obs.HydrationSecondsBuckets)
		st.gDirty = r.Gauge(obs.MetricStoreDirtyStreams, "open streams with WAL records not yet compacted")
	}
	return st, nil
}

// Dir returns the store root.
func (st *Store) Dir() string { return st.dir }

func (st *Store) logf(format string, args ...any) {
	if st.opt.Logf != nil {
		st.opt.Logf(format, args...)
	}
}

func (st *Store) streamDir(id string) string { return filepath.Join(st.dir, id) }

func baseName(epoch uint64) string { return fmt.Sprintf("base-%d.json", epoch) }
func walName(epoch uint64) string  { return fmt.Sprintf("wal-%d.log", epoch) }

// StreamMeta is the scan-time view of one stream: everything the
// serving layer needs to register a cold stream without reading its
// base snapshot or WAL payloads.
type StreamMeta struct {
	ID          string
	Meta        json.RawMessage
	BasePeriods uint64
	// WALRecords/WALBytes describe the intact WAL prefix.
	WALRecords int
	WALBytes   int64
	// LastSeq/LastGeneration come from the final intact WAL frame, or
	// the base (BasePeriods, generation unknown: 0) for an empty WAL.
	LastSeq           uint64
	LastGeneration    uint32
	CompactedAtUnixNS int64
}

// ScanResult is what Open-time recovery found on disk.
type ScanResult struct {
	Streams []StreamMeta
	// Quarantined lists stream IDs (or file names) moved to
	// <root>/quarantine/ because their state failed validation.
	Quarantined []string
}

// Scan inventories the store without hydrating anything: it reads
// each stream's manifest and walks its WAL frame headers (payloads
// are not decoded), so restart cost is proportional to the WAL sizes,
// not the model sizes. Streams whose manifest or base is corrupt are
// moved to quarantine and reported, never silently dropped; a torn
// WAL tail is normal crash debris and is truncated at next OpenStream
// (Scan just ignores it).
func (st *Store) Scan() (ScanResult, error) {
	var res ScanResult
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return res, fmt.Errorf("store: %w", err)
	}
	for _, ent := range ents {
		if !ent.IsDir() || ent.Name() == quarantineDir {
			continue
		}
		id := ent.Name()
		sm, err := st.scanStream(id)
		if err != nil {
			var ce *CorruptError
			if errors.As(err, &ce) {
				st.logf("store: quarantining stream %s: %v", id, err)
				if qerr := st.Quarantine(st.streamDir(id)); qerr != nil {
					return res, qerr
				}
				res.Quarantined = append(res.Quarantined, id)
				continue
			}
			return res, err
		}
		res.Streams = append(res.Streams, sm)
	}
	sort.Slice(res.Streams, func(i, j int) bool { return res.Streams[i].ID < res.Streams[j].ID })
	return res, nil
}

func (st *Store) readManifest(id string) (manifest, error) {
	path := filepath.Join(st.streamDir(id), "manifest.json")
	b, err := os.ReadFile(path)
	if err != nil {
		return manifest{}, &CorruptError{Stream: id, Path: path, Reason: "unreadable manifest", Err: err}
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return manifest{}, &CorruptError{Stream: id, Path: path, Reason: "undecodable manifest", Err: err}
	}
	if m.Version != manifestVersion {
		return manifest{}, &CorruptError{Stream: id, Path: path,
			Reason: fmt.Sprintf("manifest version %d, this binary reads %d", m.Version, manifestVersion)}
	}
	if m.Epoch == 0 {
		return manifest{}, &CorruptError{Stream: id, Path: path, Reason: "manifest has no epoch"}
	}
	return m, nil
}

func (st *Store) scanStream(id string) (StreamMeta, error) {
	m, err := st.readManifest(id)
	if err != nil {
		return StreamMeta{}, err
	}
	dir := st.streamDir(id)
	basePath := filepath.Join(dir, baseName(m.Epoch))
	if _, err := os.Stat(basePath); err != nil {
		return StreamMeta{}, &CorruptError{Stream: id, Path: basePath, Reason: "missing base snapshot", Err: err}
	}
	sm := StreamMeta{
		ID:                id,
		Meta:              m.Meta,
		BasePeriods:       m.BasePeriods,
		LastSeq:           m.BasePeriods,
		CompactedAtUnixNS: m.CompactedAtUnixNS,
	}
	// The WAL may legitimately not exist yet (crash between the
	// manifest commit and the first append of the new epoch).
	wal, err := os.ReadFile(filepath.Join(dir, walName(m.Epoch)))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return StreamMeta{}, fmt.Errorf("store: stream %s: %w", id, err)
	}
	recs, good := decodeFrames(wal)
	sm.WALRecords = len(recs)
	sm.WALBytes = int64(good)
	if len(recs) > 0 {
		last := recs[len(recs)-1]
		sm.LastSeq = last.Seq
		sm.LastGeneration = last.Generation
	}
	return sm, nil
}

// ErrExists marks a Create against a stream that already has durable
// state.
var ErrExists = errors.New("store: stream already exists")

// Create initializes a new stream: epoch 1, the given base snapshot
// (nil for a stream with no learned state yet) and an empty WAL. It
// fails with ErrExists if the stream already exists.
func (st *Store) Create(id string, meta json.RawMessage, base []byte, basePeriods uint64) (*Stream, error) {
	if !validID(id) {
		return nil, fmt.Errorf("store: invalid stream id %q", id)
	}
	dir := st.streamDir(id)
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err == nil {
		return nil, fmt.Errorf("store: stream %s: %w", id, ErrExists)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	const epoch = 1
	if err := writeFileSync(filepath.Join(dir, baseName(epoch)), base); err != nil {
		return nil, err
	}
	m := manifest{Version: manifestVersion, Epoch: epoch, BasePeriods: basePeriods, Meta: meta}
	if err := st.commitManifest(dir, m); err != nil {
		return nil, err
	}
	return st.openStream(id, m)
}

// OpenStream opens an existing stream for appending, truncating any
// torn WAL tail and sweeping files of non-current epochs.
func (st *Store) OpenStream(id string) (*Stream, error) {
	if !validID(id) {
		return nil, fmt.Errorf("store: invalid stream id %q", id)
	}
	m, err := st.readManifest(id)
	if err != nil {
		return nil, err
	}
	return st.openStream(id, m)
}

// Remove deletes a stream's state entirely (stream deletion, not
// corruption — corrupt state goes through Quarantine instead).
func (st *Store) Remove(id string) error {
	if !validID(id) {
		return fmt.Errorf("store: invalid stream id %q", id)
	}
	if err := os.RemoveAll(st.streamDir(id)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

const quarantineDir = "quarantine"

// Quarantine moves a file or directory under <root>/quarantine/,
// appending a numeric suffix if the name is taken. It is used for
// corrupt store streams and for undecodable legacy checkpoint files.
func (st *Store) Quarantine(path string) error {
	qdir := filepath.Join(st.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("store: quarantine: %w", err)
	}
	dst := filepath.Join(qdir, filepath.Base(path))
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", filepath.Base(path), i))
	}
	if err := os.Rename(path, dst); err != nil {
		return fmt.Errorf("store: quarantine: %w", err)
	}
	return nil
}

// JitteredThreshold deterministically spreads a base threshold by
// ±frac using a hash of the stream ID, so a fleet of streams created
// together doesn't hit its checkpoint/compaction thresholds in
// lockstep. frac <= 0 returns base unchanged; the result is at least
// 1 for positive bases.
func JitteredThreshold(id string, base int, frac float64) int {
	if base <= 0 || frac <= 0 {
		return base
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	// FNV-1a alone lacks avalanche — similar ids ("stream-001",
	// "stream-002") land adjacent — so finish with a 64-bit mixer
	// before mapping to [-1, 1) and scaling.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	u := float64(x&(1<<53-1)) / float64(1<<53) // [0, 1)
	v := base + int(float64(base)*frac*(2*u-1))
	if v < 1 {
		v = 1
	}
	return v
}

// commitManifest atomically replaces the stream's manifest: write to
// a temp file, fsync, rename over manifest.json, fsync the directory.
func (st *Store) commitManifest(dir string, m manifest) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := filepath.Join(dir, "manifest.json.tmp")
	if err := writeFileSync(tmp, b); err != nil {
		return err
	}
	if st.crash != nil {
		if err := st.crash("compact.manifest-tmp"); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, filepath.Join(dir, "manifest.json")); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// openStream builds the Stream handle for manifest m: verifies the
// base, opens the WAL for appending after truncating any torn tail,
// and sweeps files of other epochs.
func (st *Store) openStream(id string, m manifest) (*Stream, error) {
	dir := st.streamDir(id)
	basePath := filepath.Join(dir, baseName(m.Epoch))
	if _, err := os.Stat(basePath); err != nil {
		return nil, &CorruptError{Stream: id, Path: basePath, Reason: "missing base snapshot", Err: err}
	}
	walPath := filepath.Join(dir, walName(m.Epoch))
	b, err := os.ReadFile(walPath)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: stream %s: %w", id, err)
	}
	recs, good := decodeFrames(b)
	if good < len(b) {
		st.logf("store: stream %s: truncating torn WAL tail (%d of %d bytes intact)", id, good, len(b))
		if err := os.Truncate(walPath, int64(good)); err != nil {
			return nil, fmt.Errorf("store: stream %s: %w", id, err)
		}
	}
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: stream %s: %w", id, err)
	}
	s := &Stream{
		st:          st,
		id:          id,
		dir:         dir,
		epoch:       m.Epoch,
		meta:        m.Meta,
		basePeriods: m.BasePeriods,
		compactedAt: m.CompactedAtUnixNS,
		f:           f,
		walRecords:  len(recs),
		walBytes:    int64(good),
		lastSeq:     m.BasePeriods,
	}
	if len(recs) > 0 {
		last := recs[len(recs)-1]
		s.lastSeq = last.Seq
		s.lastGen = last.Generation
		if st.gDirty != nil {
			st.gDirty.Add(1)
		}
		s.dirty = true
	}
	s.sweepStaleEpochs()
	return s, nil
}

// sweepStaleEpochs best-effort deletes base/WAL files whose epoch is
// not current — debris from a compaction that crashed after the
// manifest commit but before cleanup.
func (s *Stream) sweepStaleEpochs() {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	keepBase, keepWAL := baseName(s.epoch), walName(s.epoch)
	for _, ent := range ents {
		name := ent.Name()
		if name == "manifest.json" || name == keepBase || name == keepWAL {
			continue
		}
		var e uint64
		if n, _ := fmt.Sscanf(name, "base-%d.json", &e); n == 1 && name == baseName(e) {
			s.st.logf("store: stream %s: sweeping stale %s", s.id, name)
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if n, _ := fmt.Sscanf(name, "wal-%d.log", &e); n == 1 && name == walName(e) {
			s.st.logf("store: stream %s: sweeping stale %s", s.id, name)
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if name == "manifest.json.tmp" || name == "base.tmp" {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// ObserveHydration records one lazy hydration in the store metrics.
func (st *Store) ObserveHydration(d time.Duration) {
	if st.mHydrations != nil {
		st.mHydrations.Inc()
		st.hHydration.Observe(d.Seconds())
	}
}

// writeFileSync writes b (nil writes an empty file) and fsyncs before
// closing, so a subsequent rename publishes durable content.
func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
