// Command bbbench regenerates the runtime table of Section 3.4: the
// heuristic learner's run time as a function of the bound, plus the
// exact algorithm's run time on the exact-tractable configuration.
//
// Usage:
//
//	bbbench                       # heuristic sweep on the full case study
//	bbbench -config lite -exact   # sweep + exact run on the lite subsystem
//	bbbench -repeat 5             # median of five runs per bound
//	bbbench -stats -pprof :6060   # metrics dump + live profiling
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	modelgen "github.com/blackbox-rt/modelgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbbench: ")
	var (
		config  = flag.String("config", "full", "case-study configuration: full (18 tasks) or lite (7 tasks, exact-tractable)")
		boundsF = flag.String("bounds", "1,4,16,32,64,100,120,150", "comma-separated heuristic bounds (the paper's table)")
		exact   = flag.Bool("exact", false, "also run the exact algorithm (feasible only with -config lite)")
		repeat  = flag.Int("repeat", 3, "measurement repetitions per bound (median reported)")
		periods = flag.Int("periods", modelgen.CaseStudyPeriods, "simulated periods")
		seed    = flag.Int64("seed", modelgen.CaseStudySeed, "simulation seed")

		stats      = flag.Bool("stats", false, "dump the accumulated metrics (Prometheus text) after the sweep")
		eventsFile = flag.String("events", "", "write the JSONL event stream of every run to this file")
		pprofAddr  = flag.String("pprof", "", "serve /debug/pprof/ and /metrics on this address during the sweep")
	)
	flag.Parse()

	var (
		observers   []modelgen.Observer
		reg         *modelgen.MetricsRegistry
		flushEvents func() error
	)
	if *stats || *pprofAddr != "" {
		reg = modelgen.NewMetricsRegistry()
		observers = append(observers, modelgen.NewMetricsObserver(reg))
	}
	if *eventsFile != "" {
		f, err := os.Create(*eventsFile)
		if err != nil {
			log.Fatal(err)
		}
		bw := bufio.NewWriter(f)
		sink := modelgen.NewJSONLObserver(bw)
		observers = append(observers, sink)
		flushEvents = func() error {
			if err := sink.Err(); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
	}
	obsv := modelgen.CombineObservers(observers...)
	if *pprofAddr != "" {
		srv, err := modelgen.StartDebugServer(*pprofAddr, reg)
		if err != nil {
			log.Fatalf("pprof server: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bbbench: profiling on http://%s/debug/pprof/ (metrics on /metrics)\n", srv.Addr)
	}

	var m *modelgen.Model
	var pol modelgen.CandidatePolicy
	switch *config {
	case "full":
		m = modelgen.GMStyleModel()
		pol = modelgen.CaseStudyPolicy(false)
	case "lite":
		m = modelgen.GMStyleLiteModel()
		pol = modelgen.CaseStudyPolicy(true)
	default:
		log.Fatalf("unknown config %q", *config)
	}
	bounds, err := parseBounds(*boundsF)
	if err != nil {
		log.Fatal(err)
	}

	out, err := modelgen.Simulate(m, modelgen.SimOptions{Periods: *periods, Seed: *seed, Observer: obsv})
	if err != nil {
		log.Fatalf("simulation: %v", err)
	}
	st := out.Trace.Stats()
	fmt.Printf("configuration %q: %d tasks, %d periods, %d messages, %d event pairs\n\n",
		*config, len(out.Trace.Tasks), st.Periods, st.Messages, st.EventPairs)

	fmt.Printf("%8s %16s %12s %10s\n", "Bound", "Run time", "Hypotheses", "Converged")
	var exactLUB *modelgen.DepFunc
	if *exact {
		t0 := time.Now()
		res, err := modelgen.Learn(out.Trace, modelgen.LearnOptions{Policy: pol, MaxHypotheses: 10_000_000, Observer: obsv})
		if err != nil {
			log.Fatalf("exact: %v (the full configuration is intractable; use -config lite)", err)
		}
		fmt.Printf("%8s %16v %12d %10v\n", "exact", time.Since(t0).Round(time.Millisecond),
			len(res.Hypotheses), res.Converged)
		exactLUB = res.LUB
	}
	for _, b := range bounds {
		var times []time.Duration
		var res *modelgen.LearnResult
		for r := 0; r < *repeat; r++ {
			t0 := time.Now()
			res, err = modelgen.Learn(out.Trace, modelgen.LearnOptions{Bound: b, Policy: pol, Observer: obsv})
			if err != nil {
				log.Fatalf("bound %d: %v", b, err)
			}
			times = append(times, time.Since(t0))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		med := times[len(times)/2]
		line := fmt.Sprintf("%8d %16v %12d %10v", b, med.Round(time.Microsecond), len(res.Hypotheses), res.Converged)
		if exactLUB != nil {
			if res.LUB.Equal(exactLUB) {
				line += "   LUB == exact"
			} else {
				line += "   LUB != exact"
			}
		}
		fmt.Println(line)
	}
	if exactLUB != nil {
		fmt.Println("\n(the paper reports 630.997 s for exact vs 0.220–19.048 s for the")
		fmt.Println("heuristic on a Pentium M 1.7 GHz; compare shapes, not absolutes)")
	}
	if *stats {
		fmt.Println("\nmetrics:")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			log.Fatalf("writing metrics: %v", err)
		}
	}
	if flushEvents != nil {
		if err := flushEvents(); err != nil {
			log.Fatalf("writing %s: %v", *eventsFile, err)
		}
	}
}

func parseBounds(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		b, err := strconv.Atoi(f)
		if err != nil || b <= 0 {
			return nil, fmt.Errorf("bad bound %q", f)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no bounds given")
	}
	return out, nil
}
