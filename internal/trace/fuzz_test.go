package trace

import (
	"strings"
	"testing"
)

// FuzzRead checks that the trace parser never panics and that every
// accepted input survives a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("tasks a b\nperiod\nexec a 0 5\nmsg m1 6 7\nexec b 9 12\n")
	f.Add("tasks t1\nperiod\nstart t1 0\nend t1 4\n")
	f.Add("# comment\n\ntasks x\nperiod\n")
	f.Add("tasks a\nexec a 5 1\n")
	f.Add("period\n")
	f.Add("tasks a\nmsg m 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadString(input)
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadString(sb.String())
		if err != nil {
			t.Fatalf("serialized trace failed to parse: %v\n%s", err, sb.String())
		}
		if back.Stats() != tr.Stats() {
			t.Fatalf("round trip changed stats: %+v vs %+v", back.Stats(), tr.Stats())
		}
	})
}

// FuzzFromEventsPeriodic checks the segmenter against arbitrary event
// streams encoded as byte triples.
func FuzzFromEventsPeriodic(f *testing.F) {
	f.Add([]byte{0, 10, 1, 0, 20, 2}, int64(100))
	f.Add([]byte{}, int64(50))
	f.Fuzz(func(t *testing.T, raw []byte, periodLen int64) {
		var events []Event
		for i := 0; i+2 < len(raw); i += 3 {
			events = append(events, Event{
				Time: int64(raw[i+1]) * 7,
				Kind: Kind(raw[i] % 5),
				Name: string(rune('a' + raw[i+2]%3)),
			})
		}
		tr, err := FromEventsPeriodic([]string{"a", "b", "c"}, events, 0, periodLen)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
	})
}
