package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-tracing core: 128-bit trace identities,
// W3C traceparent propagation, parent/child spans, and a bounded
// in-memory ring of finished spans served at /debug/traces.
//
// The design mirrors the Observer contract: a nil *Tracer is the
// disabled state, every method is nil-safe, and the disabled path
// never reads the clock and never allocates (pinned by
// TestNilTracerZeroAlloc / BenchmarkTraceSpanNil). Head sampling
// happens at span start: an unsampled request yields a nil *TraceSpan
// and the whole subtree disappears at zero marginal cost, which is
// what lets the ingest hot path of internal/serve stay allocation
// free while a sampled fraction of requests gets a full span tree.

// TraceID is a 128-bit trace identity (W3C trace-id).
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero identity.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the 32-character lowercase hex form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// MarshalJSON renders the hex form.
func (id TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON parses the hex form.
func (id *TraceID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	t, err := ParseTraceID(s)
	if err != nil {
		return err
	}
	*id = t
	return nil
}

// ParseTraceID parses the 32-character hex form.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("obs: trace id %q is not 32 hex characters", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("obs: trace id %q: %w", s, err)
	}
	return id, nil
}

// SpanID is a 64-bit span identity (W3C parent-id).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero identity.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the 16-character lowercase hex form.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// MarshalJSON renders the hex form.
func (id SpanID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON parses the hex form.
func (id *SpanID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	if len(s) != 16 {
		return fmt.Errorf("obs: span id %q is not 16 hex characters", s)
	}
	_, err := hex.Decode(id[:], []byte(s))
	return err
}

// SpanContext is the propagated identity of a span: what crosses
// process and goroutine boundaries. It is a small value type so that
// queuing it (internal/serve carries one per queued period) costs no
// allocation.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the W3C traceparent header (version 00):
// "00-<trace-id>-<parent-id>-<flags>".
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header. It accepts any
// version whose first four fields follow the version-00 layout, per
// the spec's forward-compatibility rule, and reports ok=false for a
// missing or malformed header (callers treat that as "no parent").
func ParseTraceparent(h string) (SpanContext, bool) {
	var sc SpanContext
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return sc, false
	}
	if h[0] == 'f' && h[1] == 'f' { // version 0xff is forbidden
		return sc, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(h[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(h[36:52])); err != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&0x01 != 0
	return sc, true
}

// SpanRecord is one finished span as stored in the ring and exported
// as JSONL.
type SpanRecord struct {
	TraceID TraceID           `json:"trace_id"`
	SpanID  SpanID            `json:"span_id"`
	Parent  SpanID            `json:"parent_id,omitempty"`
	Name    string            `json:"name"`
	StartNS int64             `json:"start_unix_ns"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// Capacity bounds the in-memory ring of finished spans (default
	// 4096). Old spans are overwritten, newest-wins.
	Capacity int
	// Sample is the head-sampling probability applied to requests that
	// arrive without a traceparent (default 1: trace everything).
	// Requests carrying a sampled traceparent are always traced;
	// requests carrying an unsampled one never are — the upstream
	// decision is honored both ways.
	Sample float64
}

// Tracer records spans into a bounded ring. The zero value is not
// usable; construct with NewTracer. A nil *Tracer is the disabled
// tracer: every method is nil-safe and free.
type Tracer struct {
	cfg TracerConfig
	rnd atomic.Uint64 // splitmix64 state for IDs and sampling

	mu   sync.Mutex
	ring []SpanRecord
	next int
	n    int // live records, <= len(ring)

	sink *JSONLSink // optional copy of every finished span
}

// NewTracer returns a Tracer with the given configuration.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	if cfg.Sample <= 0 {
		cfg.Sample = 1
	}
	t := &Tracer{cfg: cfg, ring: make([]SpanRecord, cfg.Capacity)}
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		t.rnd.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		t.rnd.Store(uint64(time.Now().UnixNano()))
	}
	return t
}

// SetSink attaches a JSONL sink that additionally receives every
// finished span as a {"event":"trace_span",...} line — pair it with
// OpenFileSink for durable trace export alongside the event stream.
func (t *Tracer) SetSink(s *JSONLSink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = s
	t.mu.Unlock()
}

// rand64 is a lock-free splitmix64 step, good enough for span IDs and
// sampling decisions (crypto-strength identifiers are not needed, and
// the hot path must not contend on a lock).
func (t *Tracer) rand64() uint64 {
	x := t.rnd.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	binary.LittleEndian.PutUint64(id[:8], t.rand64())
	binary.LittleEndian.PutUint64(id[8:], t.rand64())
	return id
}

func (t *Tracer) newSpanID() SpanID {
	for {
		var id SpanID
		binary.LittleEndian.PutUint64(id[:], t.rand64())
		if !id.IsZero() {
			return id
		}
	}
}

// TraceSpan is one in-flight span. A nil *TraceSpan (disabled tracer,
// unsampled request) accepts every method as a no-op, so instrumented
// code never branches on the sampling decision.
type TraceSpan struct {
	t   *Tracer
	rec SpanRecord
}

// StartSpan begins a span. With an invalid parent the span starts a
// new trace, subject to head sampling; with a sampled parent it joins
// the parent's trace; with an explicitly unsampled parent (or a nil
// tracer) it returns nil and the subtree is dropped.
func (t *Tracer) StartSpan(name string, parent SpanContext) *TraceSpan {
	if t == nil {
		return nil
	}
	if parent.Valid() {
		if !parent.Sampled {
			return nil
		}
		return t.start(name, parent.TraceID, parent.SpanID)
	}
	if t.cfg.Sample < 1 && float64(t.rand64()>>11)/(1<<53) >= t.cfg.Sample {
		return nil
	}
	return t.start(name, t.newTraceID(), SpanID{})
}

func (t *Tracer) start(name string, tid TraceID, parent SpanID) *TraceSpan {
	return &TraceSpan{t: t, rec: SpanRecord{
		TraceID: tid,
		SpanID:  t.newSpanID(),
		Parent:  parent,
		Name:    name,
		StartNS: time.Now().UnixNano(),
	}}
}

// StartChild begins a child span of s (nil-safe).
func (s *TraceSpan) StartChild(name string) *TraceSpan {
	if s == nil {
		return nil
	}
	return s.t.start(name, s.rec.TraceID, s.rec.SpanID)
}

// Context returns the propagable identity of the span; the zero
// SpanContext for a nil span, so an unsampled request propagates
// "nothing" for free.
func (s *TraceSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID, Sampled: true}
}

// SetAttr attaches a key/value attribute (nil-safe).
func (s *TraceSpan) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 4)
	}
	s.rec.Attrs[k] = v
}

// End finishes the span and commits it to the tracer's ring
// (nil-safe).
func (s *TraceSpan) End() {
	if s == nil {
		return
	}
	s.rec.DurNS = time.Now().UnixNano() - s.rec.StartNS
	s.t.commit(s.rec)
}

// RecordSpan commits an already-measured span under the given parent:
// the bridge used to attach engine-phase timings (which arrive as
// elapsed durations via the Observer) to a request's span tree.
// Dropped for a nil tracer or an invalid/unsampled parent.
func (t *Tracer) RecordSpan(parent SpanContext, name string, start time.Time, d time.Duration) {
	if t == nil || !parent.Valid() || !parent.Sampled {
		return
	}
	t.commit(SpanRecord{
		TraceID: parent.TraceID,
		SpanID:  t.newSpanID(),
		Parent:  parent.SpanID,
		Name:    name,
		StartNS: start.UnixNano(),
		DurNS:   d.Nanoseconds(),
	})
}

func (t *Tracer) commit(rec SpanRecord) {
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink.write("trace_span", rec)
	}
}

// records returns a copy of the live ring contents, oldest first.
func (t *Tracer) records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.n)
	start := (t.next - t.n + len(t.ring)) % len(t.ring)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Spans returns every retained span of the trace, sorted by start
// time (nil-safe: a nil tracer retains nothing).
func (t *Tracer) Spans(id TraceID) []SpanRecord {
	if t == nil {
		return nil
	}
	var out []SpanRecord
	for _, r := range t.records() {
		if r.TraceID == id {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	return out
}

// TraceSummary is one trace of the ring as listed by /debug/traces.
type TraceSummary struct {
	TraceID TraceID `json:"trace_id"`
	// Root is the name of the earliest retained span of the trace
	// (the root proper unless it has been overwritten).
	Root    string `json:"root"`
	StartNS int64  `json:"start_unix_ns"`
	// DurNS spans the earliest start to the latest end of the
	// retained spans.
	DurNS int64 `json:"dur_ns"`
	Spans int   `json:"spans"`
}

// Summaries lists the retained traces, newest first, at most limit
// entries (0 = all).
func (t *Tracer) Summaries(limit int) []TraceSummary {
	if t == nil {
		return nil
	}
	byTrace := map[TraceID]*TraceSummary{}
	rooted := map[TraceID]bool{} // a parentless span names the trace
	var order []TraceID
	var ends = map[TraceID]int64{}
	for _, r := range t.records() {
		s, ok := byTrace[r.TraceID]
		if !ok {
			s = &TraceSummary{TraceID: r.TraceID, Root: r.Name, StartNS: r.StartNS}
			byTrace[r.TraceID] = s
			order = append(order, r.TraceID)
		}
		if r.StartNS < s.StartNS {
			s.StartNS = r.StartNS
			if !rooted[r.TraceID] {
				s.Root = r.Name
			}
		}
		if r.Parent.IsZero() {
			rooted[r.TraceID] = true
			s.Root = r.Name
		}
		if end := r.StartNS + r.DurNS; end > ends[r.TraceID] {
			ends[r.TraceID] = end
		}
		s.Spans++
	}
	for id, s := range byTrace {
		s.DurNS = ends[id] - s.StartNS
	}
	out := make([]TraceSummary, 0, len(byTrace))
	for i := len(order) - 1; i >= 0; i-- {
		out = append(out, *byTrace[order[i]])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// SpanNode is a span with its children nested — the tree form served
// by /debug/traces?trace=<id>.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree assembles the retained spans of a trace into its span forest
// (normally one root; orphans whose parent fell out of the ring
// surface as extra roots rather than disappearing).
func (t *Tracer) Tree(id TraceID) []*SpanNode {
	spans := t.Spans(id)
	nodes := make(map[SpanID]*SpanNode, len(spans))
	for _, r := range spans {
		nodes[r.SpanID] = &SpanNode{SpanRecord: r}
	}
	var roots []*SpanNode
	for _, r := range spans {
		n := nodes[r.SpanID]
		if p, ok := nodes[r.Parent]; ok && r.Parent != r.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// WriteJSONL exports every retained span as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range t.records() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the ring: GET /debug/traces lists trace summaries
// (?limit=N), ?trace=<32-hex> returns one trace's span tree, and
// ?format=jsonl dumps the raw ring.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/jsonl")
			_ = t.WriteJSONL(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if q := r.URL.Query().Get("trace"); q != "" {
			id, err := ParseTraceID(q)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			tree := t.Tree(id)
			if len(tree) == 0 {
				http.Error(w, "trace not found (expired from the ring?)", http.StatusNotFound)
				return
			}
			_ = enc.Encode(map[string]any{"trace_id": id, "spans": tree})
			return
		}
		limit := 0
		fmt.Sscanf(r.URL.Query().Get("limit"), "%d", &limit)
		_ = enc.Encode(map[string]any{"traces": t.Summaries(limit)})
	})
}
