package depfunc

import (
	"fmt"

	"github.com/blackbox-rt/modelgen/internal/lattice"
)

// Reference is the retained scalar implementation of a dependency
// function: one lattice.Value per cell, table-driven per-cell lattice
// operations, and the same incremental Zobrist fingerprint scheme as
// DepFunc. It is the oracle the differential and fuzz tiers shadow the
// packed word-parallel kernel against — any divergence in entries,
// fingerprints, weights or keys between a DepFunc and a Reference
// driven through the same mutation sequence is a bug in one of the
// kernels. It is not used on any production path.
type Reference struct {
	ts *TaskSet
	v  []lattice.Value
	fp uint64
}

// NewReference returns the scalar bottom matrix (all entries ‖).
func NewReference(ts *TaskSet) *Reference {
	n := ts.Len()
	v := make([]lattice.Value, n*n)
	return &Reference{ts: ts, v: v, fp: freshFingerprint(v)}
}

// RefOf converts a packed matrix to its scalar equivalent.
func RefOf(d *DepFunc) *Reference {
	r := NewReference(d.ts)
	n := d.ts.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r.setIdx(i*n+j, d.At(i, j))
		}
	}
	return r
}

// TaskSet returns the task set the function is defined over.
func (r *Reference) TaskSet() *TaskSet { return r.ts }

// At returns the dependency value at (i, j).
func (r *Reference) At(i, j int) lattice.Value { return r.v[i*r.ts.Len()+j] }

// Set assigns the dependency value at (i, j).
func (r *Reference) Set(i, j int, v lattice.Value) {
	if i == j && v != lattice.Par {
		panic(fmt.Sprintf("depfunc: diagonal entry (%d,%d) must be ||", i, j))
	}
	r.setIdx(i*r.ts.Len()+j, v)
}

func (r *Reference) setIdx(idx int, v lattice.Value) {
	old := r.v[idx]
	if old == v {
		return
	}
	r.fp ^= entryHash(idx, old) ^ entryHash(idx, v)
	r.v[idx] = v
}

// JoinAt joins v into entry (i, j) with the table-driven lattice join,
// reporting whether the entry changed.
func (r *Reference) JoinAt(i, j int, v lattice.Value) bool {
	idx := i*r.ts.Len() + j
	nv := lattice.Join(r.v[idx], v)
	if nv == r.v[idx] {
		return false
	}
	if i == j && nv != lattice.Par {
		panic(fmt.Sprintf("depfunc: diagonal entry (%d,%d) must be ||", i, j))
	}
	r.setIdx(idx, nv)
	return true
}

// JoinWith joins other into r, cell by cell.
func (r *Reference) JoinWith(other *Reference) {
	for i := range r.v {
		r.setIdx(i, lattice.Join(r.v[i], other.v[i]))
	}
}

// MeetWith meets other into r, cell by cell.
func (r *Reference) MeetWith(other *Reference) {
	for i := range r.v {
		r.setIdx(i, lattice.Meet(r.v[i], other.v[i]))
	}
}

// Clone returns a deep copy.
func (r *Reference) Clone() *Reference {
	cp := &Reference{ts: r.ts, v: make([]lattice.Value, len(r.v)), fp: r.fp}
	copy(cp.v, r.v)
	return cp
}

// Weight sums the per-cell lattice distance.
func (r *Reference) Weight() int {
	w := 0
	for _, v := range r.v {
		w += lattice.Distance(v)
	}
	return w
}

// Key returns the canonical per-cell encoding (same format as
// DepFunc.Key).
func (r *Reference) Key() string {
	b := make([]byte, len(r.v))
	for i, v := range r.v {
		b[i] = '0' + byte(v)
	}
	return string(b)
}

// Fingerprint returns the incrementally maintained Zobrist hash.
func (r *Reference) Fingerprint() uint64 { return r.fp }

// Leq reports the pointwise order against another scalar matrix.
func (r *Reference) Leq(other *Reference) bool {
	for i := range r.v {
		if !lattice.Leq(r.v[i], other.v[i]) {
			return false
		}
	}
	return true
}

// Matches reports whether the packed matrix d agrees with r in every
// cell, in fingerprint, in weight and in key; it is the check the
// differential tiers apply after each shadowed operation.
func (r *Reference) Matches(d *DepFunc) error {
	if !r.ts.Equal(d.TaskSet()) {
		return fmt.Errorf("task sets differ")
	}
	n := r.ts.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got, want := d.At(i, j), r.At(i, j); got != want {
				return fmt.Errorf("entry (%d,%d): packed %v, reference %v", i, j, got, want)
			}
		}
	}
	if got, want := d.Fingerprint(), r.Fingerprint(); got != want {
		return fmt.Errorf("fingerprint: packed %#x, reference %#x", got, want)
	}
	if got, want := d.Weight(), r.Weight(); got != want {
		return fmt.Errorf("weight: packed %d, reference %d", got, want)
	}
	if got, want := d.Key(), r.Key(); got != want {
		return fmt.Errorf("key: packed %q, reference %q", got, want)
	}
	if fresh := d.freshFingerprint(); fresh != d.Fingerprint() {
		return fmt.Errorf("packed fingerprint drifted: incremental %#x, fresh %#x", d.Fingerprint(), fresh)
	}
	return nil
}
