package osek

import "testing"

func TestSingleJob(t *testing.T) {
	c := New()
	if err := c.Release("a", 1, 10, 5); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.NextCompletion(); !ok || got != 15 {
		t.Fatalf("NextCompletion = %d, %v", got, ok)
	}
	c.AdvanceTo(20)
	done := c.TakeCompleted()
	if len(done) != 1 {
		t.Fatalf("completed = %d", len(done))
	}
	e := done[0]
	if e.Task != "a" || e.Start != 5 || e.End != 15 || e.Release != 5 {
		t.Errorf("exec = %+v", e)
	}
	if e.Response() != 10 {
		t.Errorf("response = %d", e.Response())
	}
	if !c.Idle() {
		t.Error("CPU should be idle")
	}
}

func TestPreemption(t *testing.T) {
	c := New()
	// Low priority job starts at 0, runs 100.
	if err := c.Release("low", 1, 100, 0); err != nil {
		t.Fatal(err)
	}
	// High priority job preempts at 30 for 20.
	if err := c.Release("high", 2, 20, 30); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTo(1000)
	done := c.TakeCompleted()
	if len(done) != 2 {
		t.Fatalf("completed = %d", len(done))
	}
	if done[0].Task != "high" || done[0].Start != 30 || done[0].End != 50 {
		t.Errorf("high = %+v", done[0])
	}
	// low: started at 0, ran 30, preempted 20, finishes at 120. Its
	// interval contains the preemptor's.
	if done[1].Task != "low" || done[1].Start != 0 || done[1].End != 120 {
		t.Errorf("low = %+v", done[1])
	}
}

func TestNoPreemptionByLowerPriority(t *testing.T) {
	c := New()
	c.Release("high", 5, 50, 0)
	c.Release("low", 1, 10, 10)
	c.AdvanceTo(200)
	done := c.TakeCompleted()
	if done[0].Task != "high" || done[0].End != 50 {
		t.Errorf("high = %+v", done[0])
	}
	if done[1].Task != "low" || done[1].Start != 50 || done[1].End != 60 {
		t.Errorf("low = %+v (should wait for high)", done[1])
	}
}

func TestNestedPreemption(t *testing.T) {
	c := New()
	c.Release("p1", 1, 100, 0)
	c.Release("p2", 2, 50, 10)
	c.Release("p3", 3, 20, 20)
	c.AdvanceTo(1000)
	done := c.TakeCompleted()
	if len(done) != 3 {
		t.Fatalf("completed = %d", len(done))
	}
	// p3: 20..40; p2: 10..(50 run, preempted 20) = 80; p1: 0..170.
	want := map[string][2]int64{"p3": {20, 40}, "p2": {10, 80}, "p1": {0, 170}}
	for _, e := range done {
		w := want[e.Task]
		if e.Start != w[0] || e.End != w[1] {
			t.Errorf("%s = [%d, %d], want %v", e.Task, e.Start, e.End, w)
		}
	}
}

func TestResumedJobNotRestarted(t *testing.T) {
	c := New()
	c.Release("low", 1, 10, 0)
	c.Release("high", 2, 10, 5)
	c.AdvanceTo(100)
	for _, e := range c.TakeCompleted() {
		if e.Task == "low" && e.Start != 0 {
			t.Errorf("low start = %d, want 0 (first dispatch)", e.Start)
		}
	}
}

func TestReleaseInPast(t *testing.T) {
	c := New()
	c.Release("a", 1, 10, 50)
	c.AdvanceTo(60)
	if err := c.Release("b", 1, 10, 40); err == nil {
		t.Error("past release accepted")
	}
}

func TestReleaseNonPositiveDemand(t *testing.T) {
	c := New()
	if err := c.Release("a", 1, 0, 0); err == nil {
		t.Error("zero demand accepted")
	}
}

func TestIdleTimeAdvance(t *testing.T) {
	c := New()
	c.AdvanceTo(100)
	if c.Now() != 100 {
		t.Errorf("Now = %d", c.Now())
	}
	c.Release("a", 1, 10, 100)
	if c.Running() != "a" {
		t.Errorf("Running = %q", c.Running())
	}
	if c.QueueLen() != 0 {
		t.Errorf("QueueLen = %d", c.QueueLen())
	}
}

func TestEqualPriorityFIFO(t *testing.T) {
	c := New()
	c.Release("first", 1, 10, 0)
	c.Release("second", 1, 10, 1)
	c.Release("third", 1, 10, 2)
	c.AdvanceTo(100)
	done := c.TakeCompleted()
	order := []string{"first", "second", "third"}
	for i, e := range done {
		if e.Task != order[i] {
			t.Errorf("completion %d = %s, want %s", i, e.Task, order[i])
		}
	}
}

func TestBackToBackUtilization(t *testing.T) {
	// Many jobs released together: completions are contiguous and in
	// priority order.
	c := New()
	for i := 0; i < 10; i++ {
		c.Release("t"+string(rune('a'+i)), 10-i, 7, 0)
	}
	c.AdvanceTo(1000)
	done := c.TakeCompleted()
	if len(done) != 10 {
		t.Fatalf("completed = %d", len(done))
	}
	var prevEnd int64
	for i, e := range done {
		if e.Start != prevEnd {
			t.Errorf("job %d starts at %d, want %d (no idle gaps)", i, e.Start, prevEnd)
		}
		prevEnd = e.End
	}
	if prevEnd != 70 {
		t.Errorf("makespan = %d, want 70", prevEnd)
	}
}
