GO ?= go

.PHONY: check vet build test race bench microbench tidy

## check: the full gate — vet, build everything, race-enabled tests.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: regenerate the Section 3.4 runtime table and record it as
## benchmark telemetry (BENCH_local.json at the repo root), including
## the sequential-vs-parallel speedup columns at 4 workers. Gate a
## change against a committed baseline with:
##   go run ./cmd/bbbench -compare BENCH_base.json -threshold 10%
bench:
	$(GO) run ./cmd/bbbench -workers 4 -json BENCH_local.json

## microbench: the go-test microbenchmarks, including the
## zero-allocation observer guard (compare nil vs nop allocs/op) and
## the DepFunc Key-vs-Fingerprint dedup-cost comparison.
microbench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/learner/ ./internal/depfunc/

tidy:
	$(GO) mod tidy
