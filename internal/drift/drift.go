// Package drift tracks model convergence and detects change points in
// a stream of learned periods — the online analogue of the paper's
// unintended-dependency finding: notice when the system under
// observation stops behaving like the model we converged on, and say
// at which period it changed.
//
// # Convergence tracking
//
// After every consumed period the Monitor receives the frontier's
// least upper bound (via the engine's per-period verify-outcome hook)
// and tracks its Zobrist fingerprint: the stability streak is the
// number of consecutive periods the fingerprint has been unchanged,
// and the ambiguity ratio is the fraction of ordered task pairs whose
// entry is conditional (→?, ←?, ↔?) — the "how much did the model
// have to hedge" number.
//
// # Change-point detection
//
// Once the streak reaches Config.ConvergeAfter, the Monitor freezes
// the current LUB as the generation's reference model. Every later
// period is verified against that frozen reference with the matching
// function M (Definition 3), yielding a per-period failure indicator
// x_t ∈ {0,1}, and a Page–Hinkley test runs over the x_t series:
//
//	m_t = m_{t-1} + (x_t − x̄_t − δ)     (x̄_t = running failure mean)
//	alarm when m_t − min_{i≤t} m_i > λ
//
// A stationary stream keeps m_t falling (each success contributes
// −δ), so isolated verification failures — a rare behaviour the
// learner legitimately relaxes into the model — never alarm; a
// genuine dependency change makes every subsequent period fail
// against the frozen reference and trips λ within about λ/(1−δ)
// periods. The estimated change point is the period right after the
// accumulator's minimum.
//
// When the live model changes (the learner relaxed an entry) and then
// re-stabilizes for ConvergeAfter periods, the reference is re-frozen
// to the new model and the detector resets: refinement the learner
// absorbs and holds is reclassified as learning, not drift. A change
// the learner cannot quietly absorb keeps failing against the old
// reference and alarms first (ConvergeAfter > λ/(1−δ) guarantees the
// ordering for hard flips).
//
// On alarm the Monitor archives the reference model, bumps the stream
// to a new model generation and resets itself; the caller (the
// serving layer) forks a fresh learner for the new generation.
//
// Monitor state is plainly serializable (State / Restore): every
// field round-trips through JSON bit-identically, so a restored
// monitor continues the streak and the detector accumulator exactly
// where the checkpoint left them.
package drift

import (
	"fmt"
	"strconv"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// Defaults of Config's tunables.
const (
	// DefaultConvergeAfter is the stability streak that freezes the
	// reference model. It must comfortably exceed the alarm horizon
	// λ/(1−δ) (≈ 3.2 periods at the defaults) so a hard flip alarms
	// before the relaxed post-flip model is mistaken for convergence.
	DefaultConvergeAfter = 8
	// DefaultDelta is the Page–Hinkley tolerance δ: the failure rate
	// regarded as noise.
	DefaultDelta = 0.05
	// DefaultLambda is the Page–Hinkley alarm threshold λ.
	DefaultLambda = 3.0
	// DefaultMaxArchived bounds the archived-model list.
	DefaultMaxArchived = 4
)

// Config configures a Monitor. The zero value selects every default.
type Config struct {
	// ConvergeAfter is the stability streak (periods with an
	// unchanged model fingerprint) after which the live LUB is frozen
	// as the generation's reference model. <= 0 selects
	// DefaultConvergeAfter.
	ConvergeAfter int
	// Delta is the Page–Hinkley tolerance δ. <= 0 selects
	// DefaultDelta.
	Delta float64
	// Lambda is the Page–Hinkley alarm threshold λ. <= 0 selects
	// DefaultLambda.
	Lambda float64
	// MaxArchived bounds the archived-model ring (oldest evicted).
	// <= 0 selects DefaultMaxArchived.
	MaxArchived int
	// Policy is the candidate policy used to verify periods against
	// the frozen reference — it must match the learner's, or the
	// failure signal would measure policy skew instead of drift.
	Policy depfunc.CandidatePolicy
}

func (c Config) withDefaults() Config {
	if c.ConvergeAfter <= 0 {
		c.ConvergeAfter = DefaultConvergeAfter
	}
	if c.Delta <= 0 {
		c.Delta = DefaultDelta
	}
	if c.Lambda <= 0 {
		c.Lambda = DefaultLambda
	}
	if c.MaxArchived <= 0 {
		c.MaxArchived = DefaultMaxArchived
	}
	return c
}

// Event is one detected change point, returned by Observe (or
// ForceAlarm) exactly when an alarm fires.
type Event struct {
	// Period is the monitor period index (1-based, counted across
	// generations) at which the alarm fired.
	Period int
	// ChangePoint is the estimated offending period: the first period
	// past the Page–Hinkley accumulator's minimum. ForceAlarm events
	// point at the period that killed the learner.
	ChangePoint int
	// Generation is the new model generation after the bump.
	Generation int
	// Failures and Observed are the detector's sample counts since
	// the reference was frozen (zero for ForceAlarm before freezing).
	Failures, Observed int64
	// Archived is the retired reference model's table, empty when no
	// reference was frozen yet.
	Archived string
	// Forced marks an alarm raised by ForceAlarm (the learner died on
	// a period no hypothesis could explain) rather than by the
	// detector.
	Forced bool
}

// ArchivedModel is one retired generation's reference model.
type ArchivedModel struct {
	// Generation is the generation the model served.
	Generation int `json:"generation"`
	// Table is the reference model (depfunc.Table form).
	Table string `json:"table"`
	// FrozenAt and RetiredAt are the monitor period indices at which
	// the reference was frozen and retired.
	FrozenAt  int `json:"frozen_at"`
	RetiredAt int `json:"retired_at"`
}

// Monitor tracks one stream's model convergence and change points. It
// is not safe for concurrent use: the serving layer confines it to
// the stream's owner goroutine.
type Monitor struct {
	cfg Config

	generation int
	periods    int // periods observed, 1-based, across generations

	// Convergence tracking of the live model.
	haveFP    bool
	lastFP    uint64
	streak    int
	live      int
	ambiguous int // conditional ordered pairs in the last LUB
	pairs     int // total ordered pairs (n·(n−1))

	// Frozen reference of the current generation (nil until the
	// streak first reaches ConvergeAfter).
	ref       *depfunc.DepFunc
	refFP     uint64
	refPeriod int

	// Page–Hinkley accumulator over the failure indicators since the
	// reference was frozen (or last re-frozen).
	phN        int64
	phFails    int64
	phSum      float64
	phMin      float64
	phMinAt    int // period index of the accumulator minimum
	lastFail   bool
	lastAlarm  int // period of the last alarm, 0 = none
	lastChange int // estimated change point of the last alarm, 0 = none
	alarms     int

	archived []ArchivedModel
}

// New returns a Monitor at generation 1 with nothing observed.
func New(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults(), generation: 1}
}

// Config returns the monitor's effective (default-filled)
// configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Generation returns the current model generation (1-based).
func (m *Monitor) Generation() int { return m.generation }

// Periods returns how many periods the monitor has observed, across
// generations.
func (m *Monitor) Periods() int { return m.periods }

// Streak returns the stability streak: consecutive periods the live
// model fingerprint has been unchanged.
func (m *Monitor) Streak() int { return m.streak }

// Converged reports whether the current generation has a frozen
// reference model.
func (m *Monitor) Converged() bool { return m.ref != nil }

// AmbiguityRatio returns the fraction of ordered task pairs whose
// entry in the last observed LUB is conditional (→?, ←?, ↔?).
func (m *Monitor) AmbiguityRatio() float64 {
	if m.pairs == 0 {
		return 0
	}
	return float64(m.ambiguous) / float64(m.pairs)
}

// LastChangePoint returns the estimated offending period of the last
// alarm, 0 when none has fired.
func (m *Monitor) LastChangePoint() int { return m.lastChange }

// LastAlarmPeriod returns the period at which the last alarm fired, 0
// when none has.
func (m *Monitor) LastAlarmPeriod() int { return m.lastAlarm }

// Alarms returns how many alarms have fired over the monitor's life.
func (m *Monitor) Alarms() int { return m.alarms }

// Archived returns the retired reference models, oldest first (the
// slice is shared; callers must not mutate it).
func (m *Monitor) Archived() []ArchivedModel { return m.archived }

// Observe consumes one period's verification report: p is the period
// just learned, lub the post-period frontier LUB (the monitor clones
// what it keeps), live the working-set size. It returns a non-nil
// Event exactly when a change-point alarm fires; the caller then owns
// forking a fresh learner for the new generation.
func (m *Monitor) Observe(p *trace.Period, lub *depfunc.DepFunc, live int) *Event {
	m.periods++

	// 1. Change-point detection against the frozen reference.
	if m.ref != nil {
		fail := !depfunc.Match(m.ref, p, m.cfg.Policy)
		m.phN++
		if fail {
			m.phFails++
		}
		x := 0.0
		if fail {
			x = 1.0
		}
		mean := float64(m.phFails) / float64(m.phN)
		m.phSum += x - mean - m.cfg.Delta
		if m.phSum < m.phMin {
			m.phMin = m.phSum
			m.phMinAt = m.periods
		}
		m.lastFail = fail
		if m.phSum-m.phMin > m.cfg.Lambda {
			return m.alarm(false, m.phMinAt+1)
		}
	}

	// 2. Convergence tracking of the live model.
	fp := lub.Fingerprint()
	if m.haveFP && fp == m.lastFP {
		m.streak++
	} else {
		m.haveFP = true
		m.lastFP = fp
		m.streak = 0
	}
	m.live = live
	m.ambiguous, m.pairs = countAmbiguous(lub)

	// 3. Freeze (or re-freeze) the reference once the model has been
	// stable long enough. Re-freezing onto a changed fingerprint
	// resets the detector: refinement the learner absorbed and held
	// for ConvergeAfter periods is learning, not drift.
	if m.streak >= m.cfg.ConvergeAfter && (m.ref == nil || m.refFP != fp) {
		m.ref = lub.Clone()
		m.refFP = fp
		m.refPeriod = m.periods
		m.resetDetector()
	}
	return nil
}

// ForceAlarm raises a change point without detector evidence: the
// serving layer calls it when the learner dies on a period no
// hypothesis can explain — the strongest possible model violation.
// The offending period is the one about to be replayed on the fresh
// generation (the monitor never observed it).
func (m *Monitor) ForceAlarm() *Event {
	ev := m.alarm(true, m.periods+1)
	ev.Period = m.periods + 1
	return ev
}

// alarm archives the reference, bumps the generation and resets all
// per-generation state.
func (m *Monitor) alarm(forced bool, changePoint int) *Event {
	ev := &Event{
		Period:      m.periods,
		ChangePoint: changePoint,
		Generation:  m.generation + 1,
		Failures:    m.phFails,
		Observed:    m.phN,
		Forced:      forced,
	}
	if m.ref != nil {
		ev.Archived = m.ref.Table()
		m.archived = append(m.archived, ArchivedModel{
			Generation: m.generation,
			Table:      ev.Archived,
			FrozenAt:   m.refPeriod,
			RetiredAt:  m.periods,
		})
		if over := len(m.archived) - m.cfg.MaxArchived; over > 0 {
			m.archived = append(m.archived[:0], m.archived[over:]...)
		}
	}
	m.generation++
	m.alarms++
	m.lastAlarm = ev.Period
	m.lastChange = ev.ChangePoint
	m.ref = nil
	m.refFP = 0
	m.refPeriod = 0
	m.haveFP = false
	m.lastFP = 0
	m.streak = 0
	m.resetDetector()
	return ev
}

func (m *Monitor) resetDetector() {
	m.phN = 0
	m.phFails = 0
	m.phSum = 0
	m.phMin = 0
	m.phMinAt = m.periods
	m.lastFail = false
}

func countAmbiguous(d *depfunc.DepFunc) (ambiguous, pairs int) {
	d.Entries(func(i, j int, v lattice.Value) {
		pairs++
		switch v {
		case lattice.FwdMaybe, lattice.BwdMaybe, lattice.BiMaybe:
			ambiguous++
		}
	})
	return ambiguous, pairs
}

// DetectorState is the serialized Page–Hinkley accumulator. Floats
// round-trip bit-identically through JSON (encoding/json emits the
// shortest representation that parses back to the same float64).
type DetectorState struct {
	// N and Failures are the sample and failure counts since the
	// reference was frozen.
	N        int64 `json:"n"`
	Failures int64 `json:"failures"`
	// Sum is the accumulator m_t; Min its running minimum, reached at
	// period MinAt.
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	MinAt int     `json:"min_at"`
	// LastFail reports whether the most recent observed period failed
	// verification against the reference.
	LastFail bool `json:"last_fail,omitempty"`
}

// State is the complete serializable monitor state, embedded in
// serve checkpoints and served at /v1/streams/{id}/drift.
type State struct {
	// Generation is the current model generation (1-based).
	Generation int `json:"generation"`
	// Periods counts observed periods across generations.
	Periods int `json:"periods"`
	// Streak is the stability streak of the live model fingerprint.
	Streak int `json:"streak"`
	// Fingerprint is the live model's 64-bit Zobrist fingerprint in
	// hex, empty before the generation's first period.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Live is the working-set size after the last observed period.
	Live int `json:"live,omitempty"`
	// AmbiguousPairs over TotalPairs is the ambiguity ratio of the
	// last observed LUB (kept as integers so state round-trips
	// exactly); AmbiguityRatio is the derived convenience value.
	AmbiguousPairs int     `json:"ambiguous_pairs"`
	TotalPairs     int     `json:"total_pairs"`
	AmbiguityRatio float64 `json:"ambiguity_ratio"`
	// Converged reports whether a reference model is frozen;
	// Reference is its table, ReferenceFingerprint its hex
	// fingerprint and ReferencePeriod the period it was frozen at.
	Converged            bool   `json:"converged"`
	Reference            string `json:"reference,omitempty"`
	ReferenceFingerprint string `json:"reference_fingerprint,omitempty"`
	ReferencePeriod      int    `json:"reference_period,omitempty"`
	// Detector is the Page–Hinkley accumulator.
	Detector DetectorState `json:"detector"`
	// LastChangePoint/LastAlarmPeriod/Alarms summarize alarm history
	// (zero values = no alarm yet).
	LastChangePoint int `json:"last_change_point,omitempty"`
	LastAlarmPeriod int `json:"last_alarm_period,omitempty"`
	Alarms          int `json:"alarms,omitempty"`
	// Archived lists retired reference models, oldest first.
	Archived []ArchivedModel `json:"archived,omitempty"`
}

// State snapshots the monitor. The snapshot shares nothing mutable
// with the monitor.
func (m *Monitor) State() State {
	st := State{
		Generation:     m.generation,
		Periods:        m.periods,
		Streak:         m.streak,
		Live:           m.live,
		AmbiguousPairs: m.ambiguous,
		TotalPairs:     m.pairs,
		AmbiguityRatio: m.AmbiguityRatio(),
		Converged:      m.ref != nil,
		Detector: DetectorState{
			N:        m.phN,
			Failures: m.phFails,
			Sum:      m.phSum,
			Min:      m.phMin,
			MinAt:    m.phMinAt,
			LastFail: m.lastFail,
		},
		LastChangePoint: m.lastChange,
		LastAlarmPeriod: m.lastAlarm,
		Alarms:          m.alarms,
	}
	if m.haveFP {
		st.Fingerprint = fmtFP(m.lastFP)
	}
	if m.ref != nil {
		st.Reference = m.ref.Table()
		st.ReferenceFingerprint = fmtFP(m.refFP)
		st.ReferencePeriod = m.refPeriod
	}
	st.Archived = append(st.Archived, m.archived...)
	return st
}

// Restore rebuilds a monitor from a State snapshot under cfg (the
// runtime configuration; the snapshot carries no tunables, mirroring
// how serve re-derives learner options). The restored monitor
// continues the streak, generation and detector accumulator exactly.
func Restore(st State, cfg Config) (*Monitor, error) {
	m := New(cfg)
	if st.Generation > 0 {
		m.generation = st.Generation
	}
	m.periods = st.Periods
	m.streak = st.Streak
	m.live = st.Live
	m.ambiguous = st.AmbiguousPairs
	m.pairs = st.TotalPairs
	if st.Fingerprint != "" {
		fp, err := parseFP(st.Fingerprint)
		if err != nil {
			return nil, fmt.Errorf("drift: restore fingerprint: %w", err)
		}
		m.haveFP = true
		m.lastFP = fp
	}
	if st.Reference != "" {
		ref, err := depfunc.ParseTable(st.Reference)
		if err != nil {
			return nil, fmt.Errorf("drift: restore reference model: %w", err)
		}
		m.ref = ref
		m.refFP = ref.Fingerprint()
		if st.ReferenceFingerprint != "" {
			want, err := parseFP(st.ReferenceFingerprint)
			if err != nil {
				return nil, fmt.Errorf("drift: restore reference fingerprint: %w", err)
			}
			if want != m.refFP {
				return nil, fmt.Errorf("drift: restored reference model fingerprints %s, state says %s",
					fmtFP(m.refFP), st.ReferenceFingerprint)
			}
		}
		m.refPeriod = st.ReferencePeriod
	} else if st.Converged {
		return nil, fmt.Errorf("drift: state marked converged but carries no reference model")
	}
	m.phN = st.Detector.N
	m.phFails = st.Detector.Failures
	m.phSum = st.Detector.Sum
	m.phMin = st.Detector.Min
	m.phMinAt = st.Detector.MinAt
	m.lastFail = st.Detector.LastFail
	m.lastChange = st.LastChangePoint
	m.lastAlarm = st.LastAlarmPeriod
	m.alarms = st.Alarms
	m.archived = append(m.archived, st.Archived...)
	return m, nil
}

func fmtFP(fp uint64) string { return fmt.Sprintf("%016x", fp) }

func parseFP(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }
