package learner

import (
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// The hypothesis tables of Section 3.3 of the paper.

var paperD21 = depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ->    ||    ->
t2    <-    ||    ||    ||
t3    ||    ||    ||    ||
t4    <-    ||    ||    ||
`)

var paperD22 = depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ->    ||    ||
t2    <-    ||    ||    ->
t3    ||    ||    ||    ||
t4    ||    <-    ||    ||
`)

var paperD23 = depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ||    ||    ->
t2    ||    ||    ||    ->
t3    ||    ||    ||    ||
t4    <-    <-    ||    ||
`)

var paperD81 = depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ->?   ->?   ->
t2    <-    ||    ||    ||
t3    <-    ||    ||    ->
t4    <-    ||    <-?   ||
`)

var paperD82 = depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ||    ->?   ->
t2    ||    ||    ||    ->
t3    <-    ||    ||    ->
t4    <-    <-?   <-?   ||
`)

var paperD83 = depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ->?   ||    ->
t2    <-    ||    ||    ->
t3    ||    ||    ||    ->
t4    <-    <-?   <-?   ||
`)

var paperD84 = depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ->?   ->?   ->
t2    <-    ||    ||    ->
t3    <-    ||    ||    ||
t4    <-    <-?   ||    ||
`)

var paperD85 = depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ->?   ->?   ||
t2    <-    ||    ||    ->
t3    <-    ||    ||    ->
t4    ||    <-?   <-?   ||
`)

var paperDLUB = depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ->?   ->?   ->
t2    <-    ||    ||    ->
t3    <-    ||    ||    ->
t4    <-    <-?   <-?   ||
`)

func containsDep(set []*depfunc.DepFunc, want *depfunc.DepFunc) bool {
	for _, d := range set {
		if d.Equal(want) {
			return true
		}
	}
	return false
}

// TestExactFirstMessage checks the state after analyzing only m1: the
// two most specific hypotheses d11 (m1: t1→t2) and d12 (m1: t1→t4).
func TestExactFirstMessage(t *testing.T) {
	tr := trace.NewBuilder([]string{"t1", "t2", "t3", "t4"}).
		StartPeriod().
		Exec("t1", 0, 10).
		Msg("m1", 12, 14).
		Exec("t2", 16, 26).
		Exec("t4", 32, 42).
		MustBuild()
	res, err := LearnExact(tr, depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	d11 := depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ->    ||    ||
t2    <-    ||    ||    ||
t3    ||    ||    ||    ||
t4    ||    ||    ||    ||
`)
	d12 := depfunc.MustParseTable(`
      t1    t2    t3    t4
t1    ||    ||    ||    ->
t2    ||    ||    ||    ||
t3    ||    ||    ||    ||
t4    <-    ||    ||    ||
`)
	if len(res.Hypotheses) != 2 {
		t.Fatalf("got %d hypotheses, want 2:\n%s", len(res.Hypotheses), dumpSet(res.Hypotheses))
	}
	if !containsDep(res.Hypotheses, d11) || !containsDep(res.Hypotheses, d12) {
		t.Errorf("missing d11 or d12:\n%s", dumpSet(res.Hypotheses))
	}
}

// TestExactPeriod1 checks D_cur after period 1 of Figure 2: exactly
// {d21, d22, d23}.
func TestExactPeriod1(t *testing.T) {
	tr := trace.PaperFigure2().Slice(0, 1)
	res, err := LearnExact(tr, depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	want := []*depfunc.DepFunc{paperD21, paperD22, paperD23}
	if len(res.Hypotheses) != len(want) {
		t.Fatalf("got %d hypotheses, want %d:\n%s", len(res.Hypotheses), len(want), dumpSet(res.Hypotheses))
	}
	for i, w := range want {
		if !containsDep(res.Hypotheses, w) {
			t.Errorf("missing d2%d:\n%s", i+1, w.Table())
		}
	}
}

// TestExactFullExample is the headline golden test: after all three
// periods of Figure 2 the exact algorithm returns exactly the five
// hypotheses d81–d85 of the paper, whose least upper bound is dLUB.
func TestExactFullExample(t *testing.T) {
	res, err := LearnExact(trace.PaperFigure2(), depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]*depfunc.DepFunc{
		"d81": paperD81, "d82": paperD82, "d83": paperD83, "d84": paperD84, "d85": paperD85,
	}
	if len(res.Hypotheses) != len(want) {
		t.Fatalf("got %d hypotheses, want %d:\n%s", len(res.Hypotheses), len(want), dumpSet(res.Hypotheses))
	}
	for name, w := range want {
		if !containsDep(res.Hypotheses, w) {
			t.Errorf("missing %s:\n%s\ngot:\n%s", name, w.Table(), dumpSet(res.Hypotheses))
		}
	}
	if !res.LUB.Equal(paperDLUB) {
		t.Errorf("LUB mismatch:\ngot:\n%s\nwant:\n%s", res.LUB.Table(), paperDLUB.Table())
	}
	if res.Converged {
		t.Error("the example does not converge (5 hypotheses remain)")
	}
}

// TestExactExampleInterestingConsequence checks the paper's observation
// that t1 always determines t4 (d(t1,t4) = →) in the LUB even though no
// single design edge says so.
func TestExactExampleInterestingConsequence(t *testing.T) {
	res, err := LearnExact(trace.PaperFigure2(), depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.LUB.MustGet("t1", "t4").String(); got != "->" {
		t.Errorf("d(t1,t4) = %s, want ->", got)
	}
	if got := res.LUB.MustGet("t4", "t1").String(); got != "<-" {
		t.Errorf("d(t4,t1) = %s, want <-", got)
	}
}

// TestExactResultsAreSound verifies Theorem 2 on the worked example:
// every returned hypothesis matches every period.
func TestExactResultsAreSound(t *testing.T) {
	tr := trace.PaperFigure2()
	res, err := LearnExact(tr, depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Hypotheses {
		if ok, p := depfunc.MatchTrace(d, tr, depfunc.CandidatePolicy{}); !ok {
			t.Errorf("hypothesis %d fails to match period %d:\n%s", i, p, d.Table())
		}
	}
}

// TestExactResultsPairwiseIncomparable: the returned most-specific set
// contains no redundant element.
func TestExactResultsPairwiseIncomparable(t *testing.T) {
	res, err := LearnExact(trace.PaperFigure2(), depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Hypotheses {
		for j := range res.Hypotheses {
			if i != j && res.Hypotheses[i].Leq(res.Hypotheses[j]) {
				t.Errorf("hypotheses %d and %d comparable", i, j)
			}
		}
	}
}

func dumpSet(ds []*depfunc.DepFunc) string {
	out := ""
	for i, d := range ds {
		out += d.Table()
		if i < len(ds)-1 {
			out += "----\n"
		}
	}
	return out
}
