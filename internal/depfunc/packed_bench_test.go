package depfunc

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/lattice"
)

func benchTaskSet(n int) *TaskSet {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("t%02d", i)
	}
	ts, err := NewTaskSet(names)
	if err != nil {
		panic(err)
	}
	return ts
}

// benchOperand fills about half the off-diagonal entries with random
// non-bottom values, deterministically.
func benchOperand(ts *TaskSet, seed int64) *DepFunc {
	rng := rand.New(rand.NewSource(seed))
	n := ts.Len()
	d := Bottom(ts)
	for k := 0; k < n*n/2; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			d.Set(i, j, lattice.Value(1+rng.Intn(6)))
		}
	}
	return d
}

// BenchmarkJoinPacked times the word-parallel in-place join — the
// single hottest operation of the generalization fan-out (every child
// spawn and every merge funnels through it). One iteration joins the
// whole matrix: n²−n entries in ⌈(n²−n)/21⌉ words.
func BenchmarkJoinPacked(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			ts := benchTaskSet(n)
			d := benchOperand(ts, 1)
			o := benchOperand(ts, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.JoinWith(o)
			}
		})
	}
}

// TestJoinPackedZeroAlloc pins the allocation contract the benchmark
// relies on: joining into an owned matrix allocates nothing — no
// copy-on-write materialization, no fingerprint bookkeeping spill.
// The whole ≥10× per-period allocation reduction rests on this, so a
// regression must fail a test, not just drift a benchmark number.
func TestJoinPackedZeroAlloc(t *testing.T) {
	ts := benchTaskSet(32)
	d := benchOperand(ts, 1)
	o := benchOperand(ts, 2)
	if allocs := testing.AllocsPerRun(100, func() { d.JoinWith(o) }); allocs != 0 {
		t.Fatalf("JoinWith on an owned matrix allocates %v per run, want 0", allocs)
	}
}
