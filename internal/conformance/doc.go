// Package conformance turns the paper's theorems into executable
// oracles and runs them over a versioned golden trace corpus, giving
// the repository a machine-checkable answer to "does the learner still
// implement Feng et al. (DATE 2007)?" that goes beyond the pinned
// Figure-2 derivations.
//
// # Oracles
//
// Each oracle is a pure function from inputs to a list of Violations;
// an empty list means the property held. The properties checked are
//
//   - Theorem 2 soundness (oracle "thm2"): in exact mode, after every
//     processed period some live hypothesis is generalized by the true
//     dependency function (∃h : h ⊑ d_true). The true function is
//     computed from the generating design model by exhaustively
//     enumerating disjunction resolutions (see TruthFromModel).
//   - Bound monotonicity (oracle "bound"): the bounded heuristic's
//     recommended answer generalizes the exact answer
//     (LUB_exact ⊑ LUB_bound for every configured bound), and larger
//     search budgets never produce answers the exact result does not
//     generalize into.
//   - Lattice laws (oracle "lattice"): LUB/GLB commutativity,
//     associativity, idempotence, absorption, agreement with an
//     independent Leq-based recomputation, and consistency of the
//     Figure-3 weight metric (Distance ∈ {0,1,4,9}, strictly monotone
//     on the order) — checked exhaustively over all 7×7(×7) value
//     combinations.
//   - Merge weight monotonicity (part of "lattice"): the weight of a
//     least-upper-bound merge never undercuts either operand,
//     w(a ⊔ b) ≥ max(w(a), w(b)).
//   - Fingerprint/Key agreement (oracle "fingerprint"): over
//     deterministic random mutation walks, two dependency functions
//     have equal canonical Keys iff Equal reports them equal, equal
//     Keys imply equal Zobrist fingerprints, and the incrementally
//     maintained fingerprint never drifts from a from-scratch
//     recomputation (witnessed through a rebuilt clone).
//   - Metamorphic invariances (oracle "metamorphic"): the learned
//     result is invariant under worker-count changes, uniform message
//     relabeling, uniform time translation, and — in exact mode, where
//     the model of computation makes the hypothesis space
//     order-independent — permutation of the period sequence.
//
// # Corpus
//
// The golden corpus lives under testdata/corpus/ at the repository
// root: one directory per entry holding a trace in the text format, an
// optional ground-truth dependency table, and a JSON manifest naming
// the oracles that apply. The corpus is versioned by a VERSION file;
// see TESTING.md for the layout and versioning rules. Sim-generated
// entries are reproducible: the manifest records the generator name
// and seed, and `bbconform -gen` rewrites the whole corpus
// deterministically.
//
// # Runner
//
// Run executes every applicable oracle over every corpus entry plus
// the corpus-independent oracles, producing a Report that serializes
// to JSON (the conformance report emitted by cmd/bbconform). Smoke
// injects deliberate faults — a demoted ground-truth entry, a
// non-least upper bound — and fails unless the oracles catch them,
// guarding the harness itself against rot.
package conformance
