package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrames drives the WAL decoder with arbitrary bytes: it
// must never panic or over-read, and the clean prefix it reports must
// be exactly re-decodable — truncated, bit-flipped or hostile input
// only ever shortens the record list.
func FuzzDecodeFrames(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, frameHeaderSize-1))
	var seed []byte
	var err error
	for _, r := range []Record{
		{Seq: 1, Generation: 1, Payload: []byte(`{"period":1}`)},
		{Seq: 2, Generation: 1, Payload: nil},
		{Seq: 3, Generation: 2, Fork: true, Payload: bytes.Repeat([]byte{0x5A}, 300)},
	} {
		if seed, err = appendFrame(seed, r); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-7])
	flipped := append([]byte(nil), seed...)
	flipped[10] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, good := decodeFrames(b)
		if good < 0 || good > len(b) {
			t.Fatalf("clean prefix %d outside [0,%d]", good, len(b))
		}
		again, g2 := decodeFrames(b[:good])
		if g2 != good || len(again) != len(recs) {
			t.Fatalf("prefix not self-consistent: %d/%d bytes, %d/%d records", g2, good, len(again), len(recs))
		}
		// Re-encoding the decoded records must reproduce the prefix.
		var re []byte
		var err error
		for _, r := range recs {
			if re, err = appendFrame(re, r); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		if !bytes.Equal(re, b[:good]) {
			t.Fatal("re-encoded records differ from the clean prefix")
		}
	})
}
