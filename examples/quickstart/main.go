// Command quickstart reproduces the paper's worked example (Section
// 3.3): the four-task system of Figure 1, the three-period trace of
// Figure 2, the exact generalization algorithm, the five surviving
// most-specific hypotheses d81..d85, their least upper bound dLUB, and
// the "interesting result" that t1 always determines t4 even though no
// single design message says so.
package main

import (
	"fmt"
	"log"

	modelgen "github.com/blackbox-rt/modelgen"
)

func main() {
	tr := modelgen.PaperTrace()
	fmt.Println("The execution trace of Figure 2:")
	fmt.Println()
	fmt.Println(tr)

	res, err := modelgen.LearnExact(tr, modelgen.CandidatePolicy{})
	if err != nil {
		log.Fatalf("learning failed: %v", err)
	}

	fmt.Printf("The exact algorithm returns %d most specific hypotheses:\n\n", len(res.Hypotheses))
	for i, d := range res.Hypotheses {
		fmt.Printf("d8%d (weight %d):\n%s\n", i+1, d.Weight(), d.Table())
	}

	fmt.Println("Their least upper bound dLUB (the recommended single answer):")
	fmt.Println()
	fmt.Println(res.LUB.Table())

	fmt.Println("Interesting consequences visible in dLUB:")
	if modelgen.Determines(res.LUB, "t1", "t4") {
		fmt.Println("  - t1 always determines t4 (d(t1,t4) = ->), although the")
		fmt.Println("    design has no direct t1 -> t4 message: the learner found")
		fmt.Println("    the unconditional dependency the paper highlights.")
	}
	fmt.Printf("  - disjunction nodes: %v\n", modelgen.DisjunctionNodes(res.LUB))
	fmt.Printf("  - conjunction nodes: %v\n", modelgen.ConjunctionNodes(res.LUB))

	fmt.Println()
	fmt.Println("Dependency graph (Figure 4) in DOT format:")
	fmt.Println()
	fmt.Println(res.LUB.DOT("figure4"))

	// Sanity: the learned model matches every observed period.
	if ok, p := modelgen.MatchTrace(res.LUB, tr, modelgen.CandidatePolicy{}); !ok {
		log.Fatalf("internal error: dLUB fails period %d", p)
	}
	fmt.Println("dLUB matches all three observed periods. Done.")
}
