package depfunc

import (
	"math/bits"
	"sync"
)

// Buffer arena for matrix backing stores. The generalization loop
// retires and re-creates hypothesis matrices at a rate proportional to
// messages × bound, all of the same handful of sizes, which made the
// allocator the hot path. Retired buffers instead go back to a
// size-classed freelist and come out again on the next Bottom/Clone.
//
// The freelist is a plain mutex-guarded stack per size class rather
// than a sync.Pool: Put on a sync.Pool boxes the []uint64 header into
// an interface, which costs one heap allocation per recycled buffer —
// exactly the traffic the arena exists to remove. The stacks also
// survive GC cycles, so a steady-state run reaches zero buffer
// allocations instead of periodically refilling a drained pool.
//
// Ownership rules (also documented on the DepFunc methods):
//
//   - every buffer carries its sharer count in word 0, maintained with
//     atomics so workers may CloneShared/mutate hypotheses that share
//     a buffer concurrently;
//   - acquire hands out buffers with a count of 1;
//   - Release decrements and recycles at zero. Only release matrices
//     with no aliases outside the refcount (a matrix held by a dedup
//     map, a worklist, a snapshot or a returned result must never be
//     released — recycling a buffer that a live comparison still reads
//     would corrupt the comparison).
//
// Buffers are classed by the next power of two of their word count, so
// one class serves every matrix of a given task-set size and the pool
// never hands back a buffer that is too small.

const (
	// arenaMinClass keeps the smallest buffers (≤4 words) in one class.
	arenaMinClass = 2
	// arenaMaxClass caps pooled buffers at 2^16 words (~1180 tasks);
	// anything larger is allocator-managed.
	arenaMaxClass = 16
	// arenaCap bounds the buffers retained per class so one oversized
	// run cannot pin memory forever.
	arenaCap = 4096
)

type bufClass struct {
	mu   sync.Mutex
	free [][]uint64
}

var arena [arenaMaxClass + 1]bufClass

func arenaClass(n int) int {
	c := bits.Len(uint(n - 1))
	if c < arenaMinClass {
		c = arenaMinClass
	}
	return c
}

// acquire returns a buffer of exactly n words with the refcount word
// set to 1. When zero is true the lane words are cleared; otherwise
// the caller must overwrite all of them.
func acquire(n int, zero bool) []uint64 {
	c := arenaClass(n)
	if c > arenaMaxClass {
		b := make([]uint64, n)
		b[0] = 1
		return b
	}
	cl := &arena[c]
	cl.mu.Lock()
	var b []uint64
	if k := len(cl.free); k > 0 {
		b = cl.free[k-1]
		cl.free[k-1] = nil
		cl.free = cl.free[:k-1]
	}
	cl.mu.Unlock()
	if b == nil {
		b = make([]uint64, 1<<c)[:n]
		b[0] = 1
		return b
	}
	b = b[:n]
	if zero {
		clear(b)
	}
	b[0] = 1
	return b
}

// releaseBuf recycles a buffer whose refcount reached zero.
func releaseBuf(b []uint64) {
	c := arenaClass(len(b))
	if c > arenaMaxClass {
		return
	}
	cl := &arena[c]
	cl.mu.Lock()
	if len(cl.free) < arenaCap {
		cl.free = append(cl.free, b)
	}
	cl.mu.Unlock()
}
