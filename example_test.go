package modelgen_test

import (
	"fmt"
	"log"

	modelgen "github.com/blackbox-rt/modelgen"
)

// The smallest complete use of the library: learn the paper's worked
// example and read off the discovered unconditional dependency.
func Example() {
	tr := modelgen.PaperTrace()
	res, err := modelgen.LearnExact(tr, modelgen.CandidatePolicy{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hypotheses:", len(res.Hypotheses))
	fmt.Println("t1 determines t4:", modelgen.Determines(res.LUB, "t1", "t4"))
	// Output:
	// hypotheses: 5
	// t1 determines t4: true
}

// Building a trace by hand and learning from it.
func ExampleLearn() {
	tr, err := modelgen.NewTraceBuilder([]string{"sensor", "fusion", "actuator"}).
		StartPeriod().
		Exec("sensor", 0, 10).
		Msg("m1", 12, 14).
		Exec("fusion", 16, 30).
		Msg("m2", 32, 34).
		Exec("actuator", 36, 50).
		StartPeriod().
		Exec("sensor", 100, 110).
		Msg("m3", 112, 114).
		Exec("fusion", 116, 130).
		Msg("m4", 132, 134).
		Exec("actuator", 136, 150).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := modelgen.Learn(tr, modelgen.LearnOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.LUB.Table())
	// Output:
	//           sensor    fusion    actuator
	// sensor    ||        ->        ->
	// fusion    <-        ||        ->
	// actuator  <-        <-        ||
}

// Parsing the text trace format.
func ExampleReadTraceString() {
	tr, err := modelgen.ReadTraceString(`
tasks a b
period
exec a 0 5
msg m1 6 7
exec b 9 12
`)
	if err != nil {
		log.Fatal(err)
	}
	s := tr.Stats()
	fmt.Printf("%d period, %d executions, %d message\n", s.Periods, s.TaskExecutions, s.Messages)
	// Output:
	// 1 period, 2 executions, 1 message
}

// Simulating a built-in design model and inspecting the trace the bus
// logger would capture.
func ExampleSimulate() {
	out, err := modelgen.Simulate(modelgen.Figure1Model(), modelgen.SimOptions{Periods: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("periods:", len(out.Trace.Periods))
	fmt.Println("t1 ran every period:", ranEveryPeriod(out.Trace, "t1"))
	// Output:
	// periods: 5
	// t1 ran every period: true
}

func ranEveryPeriod(tr *modelgen.Trace, task string) bool {
	for _, p := range tr.Periods {
		if !p.Executed(task) {
			return false
		}
	}
	return true
}

// The incremental learner consumes periods as they are captured.
func ExampleNewOnlineLearner() {
	tr := modelgen.PaperTrace()
	o, err := modelgen.NewOnlineLearner(tr.Tasks, modelgen.LearnOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			log.Fatal(err)
		}
		fmt.Println("working set:", o.WorkingSetSize())
	}
	// Output:
	// working set: 3
	// working set: 5
	// working set: 5
}

// Operation-mode enumeration from a trace.
func ExampleModes() {
	for _, m := range modelgen.Modes(modelgen.PaperTrace()) {
		fmt.Printf("%s (%d period)\n", m.Key(), m.Count())
	}
	// Output:
	// t1+t2+t3+t4 (1 period)
	// t1+t2+t4 (1 period)
	// t1+t3+t4 (1 period)
}

// Dependency tables parse back into dependency functions.
func ExampleParseDepTable() {
	d, err := modelgen.ParseDepTable(`
      a     b
a     ||    ->?
b     <-    ||
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("weight:", d.Weight())
	fmt.Println("a may determine b:", d.MustGet("a", "b") == modelgen.FwdMaybe)
	// Output:
	// weight: 5
	// a may determine b: true
}
