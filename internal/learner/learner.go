// Package learner implements the generalization algorithm of Feng et
// al., "Automatic Model Generation for Black Box Real-Time Systems"
// (DATE 2007, Section 3): message-guided generalization of dependency
// hypotheses over an execution trace, in both the exact (exponential)
// variant and the bounded heuristic variant with least-upper-bound
// merging.
//
// # Algorithm
//
// Learning starts from the set {d⊥} containing only the globally most
// specific hypothesis and handles one period at a time. For every
// message occurrence, the timing-feasible (sender, receiver) candidate
// pairs A_m are computed; every live hypothesis is extended by every
// candidate assumption that does not repeat an already-assumed pair
// (at most one message per ordered pair per period), generalizing the
// dependency function only as much as necessary. At the end of each
// period, a post-processing pass relaxes unconditional entries whose
// implication the period violated, removes the assumptions, unifies
// equal hypotheses and deletes redundant (non-most-specific) ones.
//
// A subtlety visible in the paper's worked example (tables d81–d85):
// when a new dependency is stamped in period k, the stamp must already
// account for periods 1..k-1 — if some earlier period executed the
// sender without the receiver, the minimal generalization consistent
// with all instances seen so far is the conditional →?/←?, not the
// unconditional →/←. The learner therefore carries a cumulative
// execution-violation history and chooses stamp values from it.
//
// # Heuristic
//
// With Options.Bound = b > 0 the learner keeps the working hypotheses
// in a list ordered by the Definition-8 weight; whenever an addition
// makes the list one longer than b, the two lightest hypotheses are
// replaced by their least upper bound. The result remains correct but
// is no longer guaranteed to be most specific. Runtime is
// O(m·b² + m·b·t²) for m messages and t tasks.
package learner

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/hypothesis"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// ErrNoHypothesis is returned when the hypothesis set becomes empty:
// either the trace violates the assumed model of computation, or the
// generalization language cannot express the observed behaviour
// (Section 3.1).
var ErrNoHypothesis = errors.New("learner: hypothesis set became empty")

// ErrTooManyHypotheses is returned by the exact algorithm when the
// working set exceeds Options.MaxHypotheses.
var ErrTooManyHypotheses = errors.New("learner: hypothesis set exceeded the configured maximum")

// Options configures a learning run.
type Options struct {
	// Bound is the heuristic's maximum working-set size b. Zero (or
	// negative) selects the exact algorithm.
	Bound int

	// Policy controls timing-based candidate-pair computation.
	Policy depfunc.CandidatePolicy

	// EagerPrune enables the strict reading of condition 4 of the
	// generalization step: among the children one parent spawns for
	// one message, only the minimal ones are kept. The default
	// (false) keeps all children and prunes at the end of the period,
	// which is never less complete.
	EagerPrune bool

	// MaxHypotheses aborts the exact algorithm with
	// ErrTooManyHypotheses when the working set grows beyond this
	// size. Zero means unlimited.
	MaxHypotheses int

	// VerifyResults re-checks every final hypothesis against the full
	// trace with the matching function M and drops any that fail
	// (counted in Stats.DroppedUnsound). The exact algorithm never
	// produces unsound hypotheses; bounded merging can in rare
	// adversarial traces.
	VerifyResults bool

	// Observer, when non-nil, receives the structured run-trace:
	// period boundaries, per-message candidate fan-out, hypothesis
	// spawn/merge/prune events, and phase timing spans. Every emit
	// site is nil-guarded, so a nil Observer adds no allocations to
	// the hot path (verified by TestNopObserverZeroAlloc). Use
	// obs.NewMulti to attach several sinks at once.
	Observer obs.Observer

	// Provenance enables the per-hypothesis audit trail: every
	// lattice transition of every working hypothesis is recorded with
	// its cause (message generalization, end-of-period relaxation,
	// heuristic merge), queryable afterwards via Result.Explain and
	// Result.Provenance and emitted as "provenance" events for the
	// winning hypothesis when an Observer is attached. Off by
	// default: recording allocates one cons cell per changed entry,
	// and the default path must stay allocation-free.
	Provenance bool

	// Negatives lists periods the system is known to be unable to
	// produce (forbidden behaviours supplied by the analyst — the
	// version-space extension the paper sketches as future work).
	// Every returned hypothesis is guaranteed NOT to match any of
	// them; hypotheses matching a negative are discarded from the
	// final most-specific set (Stats.NegativeRejections counts them).
	//
	// The filter runs only on the final set, not incrementally: the
	// matching function M is not monotone in the lattice order (a
	// generalization step can introduce an unconditional entry that
	// rejects a negative its ancestor matched), so discarding a
	// matching ancestor mid-run could lose consistent descendants.
	Negatives []*trace.Period
}

// Stats instruments a learning run. It is populated even without an
// Observer, so callers get the headline numbers without consuming the
// full event stream.
type Stats struct {
	Periods        int // periods processed
	Messages       int // message occurrences processed
	Candidates     int // timing-feasible candidate pairs summed over messages
	Children       int // hypotheses created by generalization
	Merges         int // heuristic least-upper-bound merges
	Relaxations    int // entries relaxed by end-of-period tests
	Peak           int // peak working-set size
	Final          int // hypotheses in the returned set
	DroppedUnsound int // results dropped by VerifyResults
	// NegativeRejections counts final hypotheses discarded because
	// they matched a forbidden behaviour from Options.Negatives.
	NegativeRejections int
	// PeriodLive records the live hypothesis count at the end of each
	// processed period, in order (the per-period series behind Peak).
	PeriodLive []int
	// Elapsed is the wall time of the batch Learn call (zero for
	// Online.Result snapshots, which have no defined start).
	Elapsed time.Duration
}

// ProvStep is one recorded generalization step of a hypothesis's
// derivation chain (see Options.Provenance). Format renders it for
// humans.
type ProvStep = hypothesis.Step

// ErrNoProvenance is returned by Result.Explain when the run did not
// record provenance.
var ErrNoProvenance = errors.New("learner: provenance not recorded (set Options.Provenance)")

// Result is the outcome of a learning run.
type Result struct {
	// TaskSet is the predefined task set T of the trace.
	TaskSet *depfunc.TaskSet
	// Hypotheses is the returned set D*, sorted by ascending weight
	// (ties broken by matrix encoding for determinism). For the exact
	// algorithm this is the set of most specific hypotheses matching
	// the trace.
	Hypotheses []*depfunc.DepFunc
	// LUB is the pointwise least upper bound ⊔D*, the paper's
	// recommended single answer when the algorithm does not converge.
	LUB *depfunc.DepFunc
	// Converged reports whether exactly one hypothesis remained.
	Converged bool
	// Stats holds run instrumentation.
	Stats Stats

	// prov maps each returned dependency function to its recorded
	// derivation chain; nil unless Options.Provenance was set.
	prov map[*depfunc.DepFunc][]ProvStep
}

// Provenance returns the full derivation chain (oldest step first) of
// the i-th returned hypothesis, or nil when the run did not record
// provenance.
func (r *Result) Provenance(i int) []ProvStep {
	if r.prov == nil || i < 0 || i >= len(r.Hypotheses) {
		return nil
	}
	return r.prov[r.Hypotheses[i]]
}

// Explain answers "why did d(t1,t2) become what it is": it returns
// the chronological steps that changed entry (t1,t2) of the first
// (lightest, most specific) returned hypothesis. An empty chain with
// a nil error means the entry never left ‖. It fails with
// ErrNoProvenance when the run did not record provenance, or when a
// task name is unknown.
func (r *Result) Explain(t1, t2 string) ([]ProvStep, error) {
	if r.prov == nil {
		return nil, ErrNoProvenance
	}
	i, j := r.TaskSet.Index(t1), r.TaskSet.Index(t2)
	if i < 0 {
		return nil, fmt.Errorf("learner: unknown task %q", t1)
	}
	if j < 0 {
		return nil, fmt.Errorf("learner: unknown task %q", t2)
	}
	var out []ProvStep
	for _, s := range r.prov[r.Hypotheses[0]] {
		if s.I == i && s.J == j {
			out = append(out, s)
		}
	}
	return out, nil
}

// Learn runs the generalization algorithm over the trace. It is the
// batch form of the incremental Online learner and produces identical
// results.
func Learn(tr *trace.Trace, opt Options) (*Result, error) {
	t0 := time.Now()
	o, err := NewOnline(tr.Tasks, opt)
	if err != nil {
		return nil, err
	}
	for _, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			return nil, err
		}
	}
	// Extract the working set directly: the session ends here, so the
	// defensive clone of Online.Result is unnecessary.
	ds := make([]*depfunc.DepFunc, 0, len(o.cur))
	var prov map[*depfunc.DepFunc][]ProvStep
	if opt.Provenance {
		prov = make(map[*depfunc.DepFunc][]ProvStep, len(o.cur))
	}
	for _, h := range o.cur {
		ds = append(ds, h.D)
		if prov != nil {
			prov[h.D] = h.Provenance()
		}
	}
	res, err := finish(o.ts, tr, ds, opt, o.stats)
	if err != nil {
		return nil, err
	}
	res.prov = prov
	res.Stats.Elapsed = time.Since(t0)
	if opt.Observer != nil {
		if opt.Provenance {
			emitProvenance(opt.Observer, o.ts, res.Provenance(0))
		}
		opt.Observer.OnRunEnd(obs.RunEnd{
			Periods:   res.Stats.Periods,
			Messages:  res.Stats.Messages,
			Final:     res.Stats.Final,
			Peak:      res.Stats.Peak,
			Merges:    res.Stats.Merges,
			ElapsedNS: res.Stats.Elapsed.Nanoseconds(),
		})
	}
	return res, nil
}

// emitProvenance publishes the winning hypothesis's derivation chain
// as "provenance" events, task indices resolved to names.
func emitProvenance(obsv obs.Observer, ts *depfunc.TaskSet, steps []ProvStep) {
	for _, s := range steps {
		e := obs.Provenance{
			Period: s.Period, Index: s.Msg, Msg: s.MsgID,
			Task1: ts.Name(s.I), Task2: ts.Name(s.J),
			From: s.Old.String(), To: s.New.String(), Action: s.Action,
		}
		if s.S >= 0 {
			e.Sender, e.Receiver = ts.Name(s.S), ts.Name(s.R)
		}
		obsv.OnProvenance(e)
	}
}

// LearnExact runs the exact (exponential) algorithm.
func LearnExact(tr *trace.Trace, pol depfunc.CandidatePolicy) (*Result, error) {
	return Learn(tr, Options{Policy: pol})
}

// LearnBounded runs the heuristic with the given bound.
func LearnBounded(tr *trace.Trace, bound int, pol depfunc.CandidatePolicy) (*Result, error) {
	return Learn(tr, Options{Bound: bound, Policy: pol})
}

// analyzeMessage extends every hypothesis in cur by every admissible
// candidate assumption for one message, applying heuristic merging
// when a bound is set.
func analyzeMessage(cur []*hypothesis.Hypothesis, pairs []depfunc.Pair,
	hist []bool, n int, opt Options, stats *Stats, period, msg int, msgID string) ([]*hypothesis.Hypothesis, error) {

	if len(pairs) == 0 {
		return nil, fmt.Errorf("%w: message has no timing-feasible sender/receiver pair", ErrNoHypothesis)
	}
	ctx := hypothesis.StepCtx{Period: period, Msg: msg, MsgID: msgID}
	wl := newWorkList(opt.Bound, stats)
	wl.obsv, wl.ctx = opt.Observer, ctx
	seen := make(map[string]bool, len(cur)*len(pairs))
	scratch := make([]*hypothesis.Hypothesis, 0, len(pairs))
	for _, h := range cur {
		children := scratch[:0]
		for _, pr := range pairs {
			fwd := lattice.Fwd
			if hist[pr.S*n+pr.R] {
				fwd = lattice.FwdMaybe
			}
			bwd := lattice.Bwd
			if hist[pr.R*n+pr.S] {
				bwd = lattice.BwdMaybe
			}
			if c := h.Assume(pr, fwd, bwd, ctx); c != nil {
				children = append(children, c)
			}
		}
		if opt.EagerPrune {
			children = minimalChildren(children)
		}
		for _, c := range children {
			k := c.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			stats.Children++
			if opt.Observer != nil {
				opt.Observer.OnHypothesisSpawned(obs.HypothesisSpawned{
					Period: period, Index: msg, Weight: c.Weight(),
				})
			}
			wl.add(c)
		}
	}
	out := wl.items
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no hypothesis can explain the message", ErrNoHypothesis)
	}
	if opt.Bound <= 0 && opt.MaxHypotheses > 0 && len(out) > opt.MaxHypotheses {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyHypotheses, len(out), opt.MaxHypotheses)
	}
	return out, nil
}

// workList is the learner's working collection of hypotheses. With a
// positive bound it is kept sorted by ascending weight and every
// addition that overflows the bound merges the two lightest elements
// into their least upper bound (Section 3.2).
type workList struct {
	bound int
	items []*hypothesis.Hypothesis
	stats *Stats
	obsv  obs.Observer
	ctx   hypothesis.StepCtx
}

func newWorkList(bound int, stats *Stats) *workList {
	return &workList{bound: bound, stats: stats}
}

func (wl *workList) add(h *hypothesis.Hypothesis) {
	if wl.bound <= 0 {
		wl.items = append(wl.items, h)
		return
	}
	wl.insert(h)
	for len(wl.items) > wl.bound {
		a, b := wl.items[0], wl.items[1]
		merged := a.Merge(b, wl.ctx)
		wl.items = wl.items[2:]
		wl.stats.Merges++
		if wl.obsv != nil {
			wl.obsv.OnHypothesisMerged(obs.HypothesisMerged{
				Period: wl.ctx.Period, Index: wl.ctx.Msg,
				WeightA: a.Weight(), WeightB: b.Weight(), WeightMerged: merged.Weight(),
			})
		}
		wl.insert(merged)
	}
}

func (wl *workList) insert(h *hypothesis.Hypothesis) {
	w := h.Weight()
	i := sort.Search(len(wl.items), func(k int) bool { return wl.items[k].Weight() > w })
	wl.items = append(wl.items, nil)
	copy(wl.items[i+1:], wl.items[i:])
	wl.items[i] = h
}

// liveSuffixes returns, for each message index i, the set of pairs
// appearing in the candidate sets of messages i..end (live[len] is
// empty). After message i is analyzed, assumptions about pairs outside
// live[i+1] can never be consulted again this period.
func liveSuffixes(cands [][]depfunc.Pair) []map[depfunc.Pair]bool {
	live := make([]map[depfunc.Pair]bool, len(cands)+1)
	live[len(cands)] = map[depfunc.Pair]bool{}
	for i := len(cands) - 1; i >= 0; i-- {
		m := make(map[depfunc.Pair]bool, len(live[i+1])+len(cands[i]))
		for p := range live[i+1] {
			m[p] = true
		}
		for _, p := range cands[i] {
			m[p] = true
		}
		live[i] = m
	}
	return live
}

// forgetDeadAssumptions drops assumptions about pairs that no
// remaining message of the period can use, then unifies hypotheses
// that became identical — a pure optimization that preserves the
// algorithm's results (dead assumptions cannot influence any future
// dup-pair check, and assumption sets are discarded at the period
// boundary anyway).
func forgetDeadAssumptions(hs []*hypothesis.Hypothesis, live map[depfunc.Pair]bool) []*hypothesis.Hypothesis {
	seen := make(map[string]bool, len(hs))
	out := hs[:0]
	for _, h := range hs {
		h.RetainAssumptions(func(p depfunc.Pair) bool { return live[p] })
		k := h.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, h)
		}
	}
	return out
}

// minimalChildren keeps only the minimal elements (by the pointwise
// order on dependency functions) among the children one parent
// spawned for one message. Children with equal dependency functions
// but different assumptions are all kept.
func minimalChildren(children []*hypothesis.Hypothesis) []*hypothesis.Hypothesis {
	dominated := make([]bool, len(children))
	for i, c := range children {
		for j, o := range children {
			if i != j && o.D.Lt(c.D) {
				dominated[i] = true
				break
			}
		}
	}
	out := children[:0]
	for i, c := range children {
		if !dominated[i] {
			out = append(out, c)
		}
	}
	return out
}

// pruneMostSpecific unifies equal hypotheses and removes redundant
// ones: h is redundant iff some other hypothesis is strictly more
// specific (Section 3.1 post-processing). Removals are reported to
// obsv (reason "duplicate" or "redundant") when it is non-nil.
func pruneMostSpecific(hs []*hypothesis.Hypothesis, obsv obs.Observer, period int) []*hypothesis.Hypothesis {
	seen := make(map[string]bool, len(hs))
	uniq := make([]*hypothesis.Hypothesis, 0, len(hs))
	for _, h := range hs {
		k := h.D.Key()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, h)
		} else if obsv != nil {
			obsv.OnHypothesisPruned(obs.HypothesisPruned{
				Period: period, Reason: "duplicate", Weight: h.Weight(),
			})
		}
	}
	// Sort by weight: a hypothesis can only be dominated by a
	// strictly lighter one.
	sort.SliceStable(uniq, func(a, b int) bool { return uniq[a].Weight() < uniq[b].Weight() })
	out := make([]*hypothesis.Hypothesis, 0, len(uniq))
	for i, h := range uniq {
		redundant := false
		for j := 0; j < i; j++ {
			if uniq[j].Weight() >= h.Weight() {
				break
			}
			if uniq[j].D.Lt(h.D) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, h)
		} else if obsv != nil {
			obsv.OnHypothesisPruned(obs.HypothesisPruned{
				Period: period, Reason: "redundant", Weight: h.Weight(),
			})
		}
	}
	return out
}

func execVector(p *trace.Period, ts *depfunc.TaskSet) []bool {
	v := make([]bool, ts.Len())
	for name := range p.Execs {
		if i := ts.Index(name); i >= 0 {
			v[i] = true
		}
	}
	return v
}

func updateHistory(hist []bool, executed []bool, n int) {
	for a := 0; a < n; a++ {
		if !executed[a] {
			continue
		}
		for b := 0; b < n; b++ {
			if a != b && !executed[b] {
				hist[a*n+b] = true
			}
		}
	}
}

// finish assembles the Result from the surviving dependency
// functions. tr may be nil (incremental sessions), in which case
// VerifyResults is skipped.
func finish(ts *depfunc.TaskSet, tr *trace.Trace, ds []*depfunc.DepFunc,
	opt Options, stats Stats) (*Result, error) {

	if len(opt.Negatives) > 0 {
		kept := ds[:0]
		for _, d := range ds {
			consistent := true
			for _, neg := range opt.Negatives {
				if depfunc.Match(d, neg, opt.Policy) {
					consistent = false
					break
				}
			}
			if consistent {
				kept = append(kept, d)
			} else {
				stats.NegativeRejections++
			}
		}
		ds = kept
	}
	if opt.VerifyResults && tr != nil {
		sp := obs.StartSpan(opt.Observer, obs.PhaseVerify)
		kept := ds[:0]
		for _, d := range ds {
			if ok, _ := depfunc.MatchTrace(d, tr, opt.Policy); ok {
				kept = append(kept, d)
			} else {
				stats.DroppedUnsound++
			}
		}
		ds = kept
		sp.End()
	}
	if len(ds) == 0 {
		return nil, ErrNoHypothesis
	}
	sort.SliceStable(ds, func(a, b int) bool {
		wa, wb := ds[a].Weight(), ds[b].Weight()
		if wa != wb {
			return wa < wb
		}
		return ds[a].Key() < ds[b].Key()
	})
	stats.Final = len(ds)
	return &Result{
		TaskSet:    ts,
		Hypotheses: ds,
		LUB:        depfunc.JoinAll(ds),
		Converged:  len(ds) == 1,
		Stats:      stats,
	}, nil
}
