package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// emitAll drives one of every event through an observer.
func emitAll(o Observer) {
	o.OnEngineStart(EngineStart{Workers: 4, Bound: 8})
	o.OnPeriodStart(PeriodStart{Period: 0, Messages: 2})
	o.OnHypothesisSpawned(HypothesisSpawned{Period: 0, Index: 0, Weight: 2})
	o.OnMessageProcessed(MessageProcessed{Period: 0, Index: 0, ID: "m1", Candidates: 2, Live: 2})
	o.OnHypothesisMerged(HypothesisMerged{Period: 0, Index: 1, WeightA: 2, WeightB: 2, WeightMerged: 3})
	o.OnMessageProcessed(MessageProcessed{Period: 0, Index: 1, ID: "m2", Candidates: 1, Live: 1})
	o.OnHypothesisPruned(HypothesisPruned{Period: 0, Reason: "redundant", Weight: 5})
	o.OnPeriodEnd(PeriodEnd{Period: 0, Live: 1, Dropped: 1, WeightMin: 3, WeightMax: 3})
	o.OnRunEnd(RunEnd{Periods: 1, Messages: 2, Final: 1, Peak: 2, ElapsedNS: 1_000_000})
	o.OnPipeline(Pipeline{Stage: "trace", Name: "events_read", Value: 12})
	o.OnProvenance(Provenance{Period: 0, Index: 0, Msg: "m1", Sender: "t1", Receiver: "t4",
		Task1: "t1", Task2: "t4", From: "||", To: "->", Action: "assume"})
	o.OnSpan(SpanEnd{Phase: "generalize", ElapsedNS: 42_000})
}

func TestRecorderOrderAndFilters(t *testing.T) {
	r := NewRecorder()
	emitAll(r)
	wantKinds := []string{
		"engine_start", "period_start", "hypothesis_spawned", "message_processed",
		"hypothesis_merged", "message_processed", "hypothesis_pruned",
		"period_end", "run_end", "pipeline", "provenance", "span",
	}
	if got := r.Kinds(); !reflect.DeepEqual(got, wantKinds) {
		t.Errorf("kinds = %v, want %v", got, wantKinds)
	}
	if r.Count("message_processed") != 2 {
		t.Errorf("Count(message_processed) = %d, want 2", r.Count("message_processed"))
	}
	ms := r.OfKind("message_processed")
	if ms[1].(MessageProcessed).ID != "m2" {
		t.Errorf("second message event = %+v", ms[1])
	}
	if r.Len() != 12 {
		t.Errorf("Len = %d, want 12", r.Len())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	emitAll(s)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	// Every line is standalone JSON with an "event" key.
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	lines := 0
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		if _, ok := m["event"]; !ok {
			t.Errorf("line %d has no event field: %s", lines, sc.Text())
		}
	}
	if lines != 12 {
		t.Errorf("lines = %d, want 12", lines)
	}
	// And the typed parser reconstructs the same events a Recorder saw.
	rec := NewRecorder()
	emitAll(rec)
	back, err := ParseJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rec.Events()) {
		t.Errorf("ParseJSONL mismatch:\n got %#v\nwant %#v", back, rec.Events())
	}
}

func TestJSONLSkipsUnknownKinds(t *testing.T) {
	in := `{"event":"from_the_future","x":1}` + "\n" + `{"event":"run_end","periods":3}` + "\n"
	evs, err := ParseJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].(RunEnd).Periods != 3 {
		t.Errorf("events = %#v, want the single run_end", evs)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestJSONLSinkStickyError(t *testing.T) {
	s := NewJSONLSink(&failWriter{})
	s.OnRunEnd(RunEnd{})
	s.OnRunEnd(RunEnd{})
	s.OnRunEnd(RunEnd{})
	if s.Err() == nil {
		t.Error("write error not surfaced")
	}
}

func TestNewMulti(t *testing.T) {
	if NewMulti() != nil || NewMulti(nil, nil) != nil {
		t.Error("empty Multi should be nil to preserve the fast path")
	}
	r := NewRecorder()
	if NewMulti(nil, r) != Observer(r) {
		t.Error("single observer should be returned unwrapped")
	}
	r2 := NewRecorder()
	m := NewMulti(r, r2)
	emitAll(m)
	if r.Len() != 12 || r2.Len() != 12 {
		t.Errorf("fan-out lens = %d/%d, want 12/12", r.Len(), r2.Len())
	}
}

func TestMetricsObserverBridge(t *testing.T) {
	reg := NewRegistry()
	mo := NewMetricsObserver(reg)
	emitAll(mo)
	snap := reg.Snapshot()
	checks := map[string]int64{
		MetricPeriods:                      1,
		MetricMessages:                     2,
		MetricSpawned:                      1,
		MetricPruned:                       1,
		MetricMerges:                       1,
		MetricRuns:                         1,
		MetricLive:                         1,
		MetricPeak:                         2,
		"modelgen_trace_events_read_total": 12,
		MetricProvSteps:                    1,
		MetricWorkers:                      4,
	}
	for name, want := range checks {
		if got := snap.Value(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.HistCount(MetricCandidates) != 2 {
		t.Errorf("candidate observations = %d, want 2", snap.HistCount(MetricCandidates))
	}
	if snap.HistCount(MetricRunSeconds) != 1 || snap[MetricRunSeconds].Sum != 0.001 {
		t.Errorf("run_seconds = %+v, want one 1ms observation", snap[MetricRunSeconds])
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("probe_total", "").Add(9)
	srv, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := httpGet("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}
	if body := get("/metrics"); !strings.Contains(body, "probe_total 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/metrics"); !strings.Contains(body, "go_goroutines") {
		t.Errorf("/metrics missing runtime metrics:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("pprof endpoint returned nothing")
	}
}
