package learner

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/engine"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// SnapshotVersion is the checkpoint schema version this package
// writes and reads. Bump it when a field's meaning changes; readers
// reject versions they do not understand rather than misinterpreting
// them. Version 2 adds WorkingPacked — the frontier as packed-word
// encodings restored bit-identically — while still writing the
// rendered tables for inspectability; version-1 snapshots (tables
// only) restore unchanged via the ParseTable path.
const SnapshotVersion = 2

// Snapshot is a versioned, JSON-serializable checkpoint of an online
// learning session, captured at a period boundary. It holds deep
// copies of everything — the execution-violation history, the working
// hypothesis frontier, the retained-period verification ring — so the
// session it came from may keep consuming periods (overwriting ring
// slots) without disturbing the checkpoint.
//
// A restored session is algorithmically indistinguishable from the
// original: feeding the same subsequent periods produces bit-identical
// results, and ErrVerifyUnavailable semantics survive the round trip
// (RetainPeriods is part of the snapshot). Two things intentionally do
// not survive: provenance chains (a restored session starts fresh
// ones) and the Observer/Negatives/VerifyResults runtime options,
// which the caller of RestoreOnline supplies anew.
type Snapshot struct {
	Version int      `json:"version"`
	Tasks   []string `json:"tasks"`

	// Algorithmic options: a restored session must replay with the
	// same algorithm parameters or its state would be meaningless.
	Bound          int   `json:"bound,omitempty"`
	EagerPrune     bool  `json:"eager_prune,omitempty"`
	MaxHypotheses  int   `json:"max_hypotheses,omitempty"`
	RetainPeriods  int   `json:"retain_periods,omitempty"`
	PeriodLiveCap  int   `json:"period_live_cap,omitempty"`
	SenderWindow   int64 `json:"sender_window,omitempty"`
	ReceiverWindow int64 `json:"receiver_window,omitempty"`
	MaxSenders     int   `json:"max_senders,omitempty"`
	MaxReceivers   int   `json:"max_receivers,omitempty"`

	// History is the cumulative execution-violation vector, row-major
	// over the task indices, encoded as a '0'/'1' string of length n².
	History string `json:"history"`
	// Working holds the live hypothesis frontier as dependency tables
	// (depfunc.Table / ParseTable round trip), in working-set order.
	// Version 2 keeps writing it so checkpoints stay human-readable,
	// but restore prefers WorkingPacked when present.
	Working []string `json:"working"`
	// WorkingPacked holds the same frontier as base64 packed-word
	// encodings (depfunc.EncodePacked), in the same order. Decoding
	// restores each matrix — words, fingerprint, weight — bit-
	// identically, which the table round trip only guarantees up to
	// re-derivation.
	WorkingPacked []string `json:"working_packed,omitempty"`
	// Stats is the engine instrumentation snapshot.
	Stats engine.Stats `json:"stats"`
	// Retained is the verification ring buffer, oldest period first.
	Retained []SnapshotPeriod `json:"retained,omitempty"`
}

// SnapshotPeriod is the explicit wire form of one retained period.
// (The trace package's JSON form validates global period ordering,
// which per-period clocks in the text format legitimately violate, so
// checkpoints carry their own schema.)
type SnapshotPeriod struct {
	Index int             `json:"index"`
	Execs []SnapshotExec  `json:"execs"`
	Msgs  []trace.Message `json:"msgs,omitempty"`
}

// SnapshotExec is one task execution of a retained period.
type SnapshotExec struct {
	Task  string `json:"task"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

// Snapshot checkpoints the session. It fails on a dead session (a
// sticky AddPeriod error): the state is not a consistent prefix of the
// instance stream and must not be persisted.
func (o *Online) Snapshot() (*Snapshot, error) {
	if o.err != nil {
		return nil, fmt.Errorf("learner: snapshot of a dead session: %w", o.err)
	}
	st := o.eng.State()
	s := &Snapshot{
		Version:        SnapshotVersion,
		Tasks:          o.eng.TaskSet().Names(),
		Bound:          o.opt.Bound,
		EagerPrune:     o.opt.EagerPrune,
		MaxHypotheses:  o.opt.MaxHypotheses,
		RetainPeriods:  o.opt.RetainPeriods,
		PeriodLiveCap:  o.opt.PeriodLiveCap,
		SenderWindow:   o.opt.Policy.SenderWindow,
		ReceiverWindow: o.opt.Policy.ReceiverWindow,
		MaxSenders:     o.opt.Policy.MaxSenders,
		MaxReceivers:   o.opt.Policy.MaxReceivers,
		Stats:          st.Stats,
	}
	hist := make([]byte, len(st.History))
	for i, b := range st.History {
		if b {
			hist[i] = '1'
		} else {
			hist[i] = '0'
		}
	}
	s.History = string(hist)
	for _, d := range st.Working {
		s.Working = append(s.Working, d.Table())
		s.WorkingPacked = append(s.WorkingPacked, d.EncodePacked())
	}
	// Ring contents oldest-first, deep-copied again on the way out so
	// the snapshot shares nothing with the live ring even before
	// serialization.
	if tr := o.retainedTrace(); tr != nil {
		for _, p := range tr.Periods {
			s.Retained = append(s.Retained, snapshotPeriod(p.Clone()))
		}
	}
	return s, nil
}

func snapshotPeriod(p *trace.Period) SnapshotPeriod {
	sp := SnapshotPeriod{Index: p.Index, Msgs: p.Msgs}
	names := make([]string, 0, len(p.Execs))
	for t := range p.Execs {
		names = append(names, t)
	}
	sort.Strings(names)
	sort.SliceStable(names, func(i, j int) bool {
		return p.Execs[names[i]].Start < p.Execs[names[j]].Start
	})
	for _, t := range names {
		iv := p.Execs[t]
		sp.Execs = append(sp.Execs, SnapshotExec{Task: t, Start: iv.Start, End: iv.End})
	}
	return sp
}

func (sp SnapshotPeriod) period() *trace.Period {
	p := &trace.Period{Index: sp.Index, Execs: make(map[string]trace.Interval, len(sp.Execs))}
	for _, e := range sp.Execs {
		p.Execs[e.Task] = trace.Interval{Start: e.Start, End: e.End}
	}
	p.Msgs = append(p.Msgs, sp.Msgs...)
	return p
}

// RestoreOnline rebuilds an online session from a Snapshot. The
// algorithmic options (Bound, Policy, EagerPrune, MaxHypotheses,
// RetainPeriods, PeriodLiveCap) come from the snapshot; opt supplies
// only the runtime-facing knobs — Workers, Observer, Provenance,
// VerifyResults, Negatives, OnPeriodVerify — which may differ from
// the original session's without affecting replay determinism.
func RestoreOnline(s *Snapshot, opt Options) (*Online, error) {
	if s.Version != SnapshotVersion && s.Version != 1 {
		return nil, fmt.Errorf("learner: snapshot version %d, this binary reads 1..%d", s.Version, SnapshotVersion)
	}
	ts, err := depfunc.NewTaskSet(s.Tasks)
	if err != nil {
		return nil, fmt.Errorf("learner: snapshot: %w", err)
	}
	opt.Bound = s.Bound
	opt.EagerPrune = s.EagerPrune
	opt.MaxHypotheses = s.MaxHypotheses
	opt.RetainPeriods = s.RetainPeriods
	opt.PeriodLiveCap = s.PeriodLiveCap
	opt.Policy = depfunc.CandidatePolicy{
		SenderWindow:   s.SenderWindow,
		ReceiverWindow: s.ReceiverWindow,
		MaxSenders:     s.MaxSenders,
		MaxReceivers:   s.MaxReceivers,
	}

	n := ts.Len()
	if len(s.History) != n*n {
		return nil, fmt.Errorf("learner: snapshot history length %d does not fit %d tasks", len(s.History), n)
	}
	st := &engine.State{History: make([]bool, len(s.History)), Stats: s.Stats}
	for i := 0; i < len(s.History); i++ {
		switch s.History[i] {
		case '1':
			st.History[i] = true
		case '0':
		default:
			return nil, fmt.Errorf("learner: snapshot history has invalid byte %q at %d", s.History[i], i)
		}
	}
	if len(s.WorkingPacked) > 0 {
		// Packed encoding (version 2): bit-identical restore, and the
		// rendered tables — when also present — must agree with it, so
		// a hand-edited checkpoint can't silently diverge.
		if len(s.Working) > 0 && len(s.Working) != len(s.WorkingPacked) {
			return nil, fmt.Errorf("learner: snapshot has %d working tables but %d packed encodings",
				len(s.Working), len(s.WorkingPacked))
		}
		for i, enc := range s.WorkingPacked {
			d, err := depfunc.DecodePacked(ts, enc)
			if err != nil {
				return nil, fmt.Errorf("learner: snapshot working hypothesis %d: %w", i, err)
			}
			if len(s.Working) > 0 && d.Table() != s.Working[i] {
				return nil, fmt.Errorf("learner: snapshot working hypothesis %d: packed encoding disagrees with table", i)
			}
			st.Working = append(st.Working, d)
		}
	} else {
		for i, tbl := range s.Working {
			d, err := depfunc.ParseTable(tbl)
			if err != nil {
				return nil, fmt.Errorf("learner: snapshot working hypothesis %d: %w", i, err)
			}
			if !d.TaskSet().Equal(ts) {
				return nil, fmt.Errorf("learner: snapshot working hypothesis %d is over task set %v, want %v",
					i, d.TaskSet().Names(), s.Tasks)
			}
			st.Working = append(st.Working, d)
		}
	}
	eng, err := engine.Restore(ts, opt.engineConfig(), st)
	if err != nil {
		return nil, fmt.Errorf("learner: %w", err)
	}
	o := &Online{eng: eng, opt: opt}
	if opt.RetainPeriods > 0 {
		o.retained = make([]*trace.Period, 0, opt.RetainPeriods)
		if len(s.Retained) > opt.RetainPeriods {
			return nil, fmt.Errorf("learner: snapshot retains %d periods, ring holds %d",
				len(s.Retained), opt.RetainPeriods)
		}
		for _, sp := range s.Retained {
			o.retained = append(o.retained, sp.period())
		}
		// Oldest-first with next = 0: when the ring is full the next
		// write overwrites index 0, which is exactly the oldest entry.
	} else if len(s.Retained) > 0 {
		return nil, fmt.Errorf("learner: snapshot carries retained periods but RetainPeriods is zero")
	}
	return o, nil
}

// WriteSnapshot serializes the snapshot as indented JSON.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a JSON snapshot (version-checked by
// RestoreOnline, not here, so callers can inspect foreign versions).
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("learner: snapshot: %w", err)
	}
	return &s, nil
}
