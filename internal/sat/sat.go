// Package sat provides a small DPLL satisfiability solver and a CNF
// encoding of the learner's message-assignment problem.
//
// The paper proves (Theorem 1, by reduction from SAT) that computing
// the set of most specific hypotheses is NP-hard. This package plays
// the substrate role on the other side of that bridge: the
// within-period sender/receiver assignment that the matching function
// M must exhibit is encoded into CNF and solved with DPLL, giving an
// independent implementation that cross-checks the backtracking
// matcher in depfunc (see MatchPeriod).
package sat

import (
	"errors"
	"fmt"
	"sort"
)

// Literal is a propositional literal: +v is variable v, -v its
// negation. Variables are numbered from 1.
type Literal int

// Var returns the literal's variable.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is unnegated.
func (l Literal) Positive() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Literal

// CNF is a conjunction of clauses over variables 1..NumVars.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// NewCNF returns an empty formula over n variables.
func NewCNF(n int) *CNF { return &CNF{NumVars: n} }

// AddClause appends a clause. An empty clause makes the formula
// trivially unsatisfiable.
func (c *CNF) AddClause(lits ...Literal) error {
	for _, l := range lits {
		if l == 0 || l.Var() > c.NumVars {
			return fmt.Errorf("sat: literal %d out of range (1..%d)", l, c.NumVars)
		}
	}
	c.Clauses = append(c.Clauses, append(Clause(nil), lits...))
	return nil
}

// MustAddClause is AddClause for known-good literals.
func (c *CNF) MustAddClause(lits ...Literal) {
	if err := c.AddClause(lits...); err != nil {
		panic(err)
	}
}

// Assignment maps variables (1-indexed) to truth values. Index 0 is
// unused.
type Assignment []bool

// Stats instruments a solver run.
type Stats struct {
	Decisions    int
	Propagations int
}

// Solve decides satisfiability by DPLL with unit propagation and pure
// literal elimination. If satisfiable, it returns a satisfying total
// assignment.
func Solve(c *CNF) (Assignment, bool, Stats) {
	s := &solver{n: c.NumVars, val: make([]int8, c.NumVars+1)}
	for _, cl := range c.Clauses {
		s.clauses = append(s.clauses, cl)
	}
	ok := s.dpll()
	if !ok {
		return nil, false, s.stats
	}
	out := make(Assignment, c.NumVars+1)
	for v := 1; v <= c.NumVars; v++ {
		out[v] = s.val[v] == 1
	}
	return out, true, s.stats
}

// Satisfies reports whether the assignment satisfies the formula.
func Satisfies(c *CNF, a Assignment) bool {
	for _, cl := range c.Clauses {
		ok := false
		for _, l := range cl {
			v := l.Var()
			if v < len(a) && a[v] == l.Positive() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

type solver struct {
	n       int
	val     []int8 // 0 unassigned, 1 true, -1 false
	clauses []Clause
	stats   Stats
}

func (s *solver) litVal(l Literal) int8 {
	v := s.val[l.Var()]
	if l < 0 {
		return -v
	}
	return v
}

// simplify runs unit propagation and pure-literal elimination to a
// fixpoint. It returns false on conflict, along with the trail of
// assignments it made (for backtracking).
func (s *solver) simplify(trail *[]int) bool {
	for {
		changed := false
		polarity := make([]int8, s.n+1) // 1 pos only, -1 neg only, 2 both, 0 unseen
		for _, cl := range s.clauses {
			satisfied := false
			var unit Literal
			unassigned := 0
			for _, l := range cl {
				switch s.litVal(l) {
				case 1:
					satisfied = true
				case 0:
					unassigned++
					unit = l
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			if unassigned == 0 {
				return false // conflict
			}
			if unassigned == 1 {
				s.assign(unit, trail)
				s.stats.Propagations++
				changed = true
				continue
			}
			for _, l := range cl {
				if s.litVal(l) != 0 {
					continue
				}
				v := l.Var()
				p := int8(1)
				if l < 0 {
					p = -1
				}
				switch polarity[v] {
				case 0:
					polarity[v] = p
				case p:
				default:
					polarity[v] = 2
				}
			}
		}
		if changed {
			continue
		}
		// Pure literals.
		for v := 1; v <= s.n; v++ {
			if s.val[v] == 0 && (polarity[v] == 1 || polarity[v] == -1) {
				l := Literal(v)
				if polarity[v] == -1 {
					l = -l
				}
				s.assign(l, trail)
				s.stats.Propagations++
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
}

func (s *solver) assign(l Literal, trail *[]int) {
	v := l.Var()
	if l > 0 {
		s.val[v] = 1
	} else {
		s.val[v] = -1
	}
	*trail = append(*trail, v)
}

func (s *solver) undo(trail []int) {
	for _, v := range trail {
		s.val[v] = 0
	}
}

func (s *solver) dpll() bool {
	var trail []int
	if !s.simplify(&trail) {
		s.undo(trail)
		return false
	}
	// Pick the first unassigned variable.
	branch := 0
	for v := 1; v <= s.n; v++ {
		if s.val[v] == 0 {
			branch = v
			break
		}
	}
	if branch == 0 {
		return true // total assignment, all clauses satisfied
	}
	s.stats.Decisions++
	for _, l := range []Literal{Literal(branch), -Literal(branch)} {
		var sub []int
		s.assign(l, &sub)
		if s.dpll() {
			return true
		}
		s.undo(sub)
	}
	s.undo(trail)
	return false
}

// ErrParse reports a malformed DIMACS input.
var ErrParse = errors.New("sat: malformed DIMACS input")

// ParseDIMACS parses the classic "p cnf V C" format.
func ParseDIMACS(input string) (*CNF, error) {
	var cnf *CNF
	var cur Clause
	lines := splitLines(input)
	for _, ln := range lines {
		fs := fields(ln)
		if len(fs) == 0 || fs[0] == "c" {
			continue
		}
		if fs[0] == "p" {
			if len(fs) != 4 || fs[1] != "cnf" {
				return nil, fmt.Errorf("%w: bad problem line %q", ErrParse, ln)
			}
			var nv, nc int
			if _, err := fmt.Sscanf(fs[2]+" "+fs[3], "%d %d", &nv, &nc); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			if nv < 0 || nc < 0 {
				return nil, fmt.Errorf("%w: negative counts in problem line %q", ErrParse, ln)
			}
			cnf = NewCNF(nv)
			continue
		}
		if cnf == nil {
			return nil, fmt.Errorf("%w: clause before problem line", ErrParse)
		}
		for _, f := range fs {
			var l int
			if _, err := fmt.Sscanf(f, "%d", &l); err != nil {
				return nil, fmt.Errorf("%w: bad literal %q", ErrParse, f)
			}
			if l == 0 {
				if err := cnf.AddClause(cur...); err != nil {
					return nil, err
				}
				cur = nil
				continue
			}
			cur = append(cur, Literal(l))
		}
	}
	if cnf == nil {
		return nil, fmt.Errorf("%w: missing problem line", ErrParse)
	}
	if len(cur) > 0 {
		if err := cnf.AddClause(cur...); err != nil {
			return nil, err
		}
	}
	return cnf, nil
}

// DIMACS renders the formula in DIMACS format.
func (c *CNF) DIMACS() string {
	out := fmt.Sprintf("p cnf %d %d\n", c.NumVars, len(c.Clauses))
	for _, cl := range c.Clauses {
		line := ""
		lits := append(Clause(nil), cl...)
		sort.Slice(lits, func(i, j int) bool { return lits[i].Var() < lits[j].Var() })
		for _, l := range lits {
			line += fmt.Sprintf("%d ", l)
		}
		out += line + "0\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func fields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		isSpace := i == len(s) || s[i] == ' ' || s[i] == '\t' || s[i] == '\r'
		if isSpace {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}
