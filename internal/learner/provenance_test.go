package learner

import (
	"errors"
	"reflect"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// TestExplainPaperEntry pins the exact derivation of the paper's
// highlighted consequence d(t1,t4) = → on the Figure 2 trace: one
// generalization step, made for message m1 of the first period under
// the assumption t1→t4, taking the entry from ‖ to →, and never
// touched again.
func TestExplainPaperEntry(t *testing.T) {
	res, err := Learn(trace.PaperFigure2(), Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	steps, err := res.Explain("t1", "t4")
	if err != nil {
		t.Fatal(err)
	}
	want := []ProvStep{{
		Period: 0, Msg: 0, MsgID: "m1",
		S: 0, R: 3, I: 0, J: 3,
		Old: lattice.Par, New: lattice.Fwd, Action: "assume",
	}}
	if !reflect.DeepEqual(steps, want) {
		t.Errorf("Explain(t1,t4):\n got %+v\nwant %+v", steps, want)
	}
	if got := steps[0].Format(res.TaskSet); got != "period 0 msg 0 (m1): assume t1->t4: d(t1,t4): || => ->" {
		t.Errorf("Format = %q", got)
	}

	// The full chain of the winning hypothesis is deterministic for
	// the exact algorithm; pin its shape.
	chain := res.Provenance(0)
	if len(chain) != 9 {
		t.Fatalf("winning chain has %d steps, want 9: %+v", len(chain), chain)
	}
	for i, s := range chain {
		if s.Action != "assume" && s.Action != "relax" {
			t.Errorf("step %d: unexpected action %q", i, s.Action)
		}
		if s.Action == "relax" && (s.Msg != -1 || s.S != -1) {
			t.Errorf("relax step %d carries message context: %+v", i, s)
		}
	}
	// The period-1 relaxation of d(t4,t2) is part of the chain.
	relax := chain[6]
	if relax.Action != "relax" || relax.Period != 1 || relax.I != 3 || relax.J != 1 ||
		relax.Old != lattice.Bwd || relax.New != lattice.BwdMaybe {
		t.Errorf("relax step = %+v", relax)
	}

	// An entry that never left ‖ explains to an empty chain, nil error.
	if steps, err := res.Explain("t2", "t3"); err != nil || len(steps) != 0 {
		t.Errorf("Explain(t2,t3) = %v, %v; want empty, nil", steps, err)
	}

	// Every returned hypothesis has a chain under Provenance(i).
	for i := range res.Hypotheses {
		if res.Provenance(i) == nil {
			t.Errorf("hypothesis %d has no chain", i)
		}
	}
	if res.Provenance(-1) != nil || res.Provenance(len(res.Hypotheses)) != nil {
		t.Error("out-of-range Provenance not nil")
	}
}

func TestExplainErrors(t *testing.T) {
	res, err := Learn(trace.PaperFigure2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Explain("t1", "t4"); !errors.Is(err, ErrNoProvenance) {
		t.Errorf("without recording: err = %v, want ErrNoProvenance", err)
	}
	if res.Provenance(0) != nil {
		t.Error("Provenance(0) non-nil without recording")
	}

	res, err = Learn(trace.PaperFigure2(), Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Explain("nope", "t4"); err == nil {
		t.Error("unknown task t1 accepted")
	}
	if _, err := res.Explain("t1", "nope"); err == nil {
		t.Error("unknown task t2 accepted")
	}
}

// TestProvenanceEventsEmitted: with an observer attached, the batch
// learner publishes the winning hypothesis's chain as provenance
// events, task indices resolved to names, before run_end.
func TestProvenanceEventsEmitted(t *testing.T) {
	rec := obs.NewRecorder()
	res, err := Learn(trace.PaperFigure2(), Options{Provenance: true, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	evs := rec.OfKind("provenance")
	chain := res.Provenance(0)
	if len(evs) != len(chain) {
		t.Fatalf("%d provenance events, chain has %d steps", len(evs), len(chain))
	}
	first := evs[0].(obs.Provenance)
	if first.Task1 != "t1" || first.Task2 != "t4" || first.Sender != "t1" || first.Receiver != "t4" ||
		first.From != "||" || first.To != "->" || first.Action != "assume" || first.Msg != "m1" {
		t.Errorf("first provenance event = %+v", first)
	}
	// Relax events omit the pair.
	for _, e := range evs {
		p := e.(obs.Provenance)
		if p.Action == "relax" && (p.Sender != "" || p.Receiver != "") {
			t.Errorf("relax event carries a pair: %+v", p)
		}
	}
	// Events precede run_end.
	kinds := rec.Kinds()
	last := len(kinds) - 1
	if kinds[last] != "run_end" || kinds[last-1] != "provenance" {
		t.Errorf("tail of stream = %v", kinds[len(kinds)-3:])
	}
	// Without the option, none are emitted.
	rec2 := obs.NewRecorder()
	if _, err := Learn(trace.PaperFigure2(), Options{Observer: rec2}); err != nil {
		t.Fatal(err)
	}
	if n := rec2.Count("provenance"); n != 0 {
		t.Errorf("%d provenance events without Options.Provenance", n)
	}
}

// TestProvenanceDoesNotChangeResults: recording is pure bookkeeping.
func TestProvenanceDoesNotChangeResults(t *testing.T) {
	for _, bound := range []int{0, 2, 8} {
		with, err := Learn(trace.PaperFigure2(), Options{Bound: bound, Provenance: true})
		if err != nil {
			t.Fatal(err)
		}
		without, err := Learn(trace.PaperFigure2(), Options{Bound: bound})
		if err != nil {
			t.Fatal(err)
		}
		if len(with.Hypotheses) != len(without.Hypotheses) || !with.LUB.Equal(without.LUB) {
			t.Errorf("bound %d: provenance changed the result", bound)
		}
		for i := range with.Hypotheses {
			if !with.Hypotheses[i].Equal(without.Hypotheses[i]) {
				t.Errorf("bound %d: hypothesis %d differs", bound, i)
			}
		}
	}
}

// TestOnlineProvenance: the incremental learner records the same
// chains as the batch run, and snapshots keep working as periods
// arrive.
func TestOnlineProvenance(t *testing.T) {
	tr := trace.PaperFigure2()
	batch, err := Learn(tr, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOnline(tr.Tasks, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
		if _, err := o.Result(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	bSteps, err := batch.Explain("t1", "t4")
	if err != nil {
		t.Fatal(err)
	}
	oSteps, err := res.Explain("t1", "t4")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bSteps, oSteps) {
		t.Errorf("online chain diverges from batch:\n %+v\n %+v", oSteps, bSteps)
	}
	if !reflect.DeepEqual(batch.Provenance(0), res.Provenance(0)) {
		t.Error("winning chains diverge between batch and online")
	}
}

// TestVerifySpanEmitted: VerifyResults wraps its re-check in a
// "verify" span.
func TestVerifySpanEmitted(t *testing.T) {
	rec := obs.NewRecorder()
	if _, err := Learn(trace.PaperFigure2(), Options{Bound: 4, VerifyResults: true, Observer: rec}); err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for _, e := range rec.OfKind("span") {
		phases[e.(obs.SpanEnd).Phase]++
	}
	for _, phase := range []string{obs.PhaseCandidates, obs.PhaseGeneralize, obs.PhasePostprocess} {
		if phases[phase] != 3 { // one per period
			t.Errorf("phase %q: %d spans, want 3", phase, phases[phase])
		}
	}
	if phases[obs.PhaseVerify] != 1 {
		t.Errorf("verify spans = %d, want 1", phases[obs.PhaseVerify])
	}
}
