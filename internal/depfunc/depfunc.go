package depfunc

import (
	"fmt"
	"sort"
	"strings"

	"github.com/blackbox-rt/modelgen/internal/lattice"
)

// DepFunc is a dependency function d : T×T → V stored as a flat
// row-major matrix over the task set's dense indices. The diagonal is
// always ‖ (a task has no dependency on itself). Off-diagonal entries
// (i, j) and (j, i) are independent: the generalization algorithm
// installs mirrored values (→ at the sender row, ← at the receiver
// row) but end-of-period relaxation may later generalize the two sides
// asymmetrically, exactly as in the paper's tables d81–d85.
type DepFunc struct {
	ts *TaskSet
	v  []lattice.Value
	// fp is the Zobrist fingerprint of v, maintained incrementally by
	// every mutation (see fingerprint.go). Invariant:
	// fp == freshFingerprint(v).
	fp uint64
}

// Bottom returns the most specific hypothesis d⊥: all entries ‖.
func Bottom(ts *TaskSet) *DepFunc {
	n := ts.Len()
	v := make([]lattice.Value, n*n)
	return &DepFunc{ts: ts, v: v, fp: freshFingerprint(v)}
}

// Top returns the least specific hypothesis d⊤: all off-diagonal
// entries ↔?.
func Top(ts *TaskSet) *DepFunc {
	d := Bottom(ts)
	n := ts.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.setIdx(i*n+j, lattice.Top)
			}
		}
	}
	return d
}

// TaskSet returns the task set the function is defined over.
func (d *DepFunc) TaskSet() *TaskSet { return d.ts }

// N returns the number of tasks.
func (d *DepFunc) N() int { return d.ts.Len() }

// At returns the dependency value at (i, j) by task index.
func (d *DepFunc) At(i, j int) lattice.Value { return d.v[i*d.ts.Len()+j] }

// Set assigns the dependency value at (i, j). Setting a diagonal entry
// to anything but ‖ panics: it would violate the representation
// invariant.
func (d *DepFunc) Set(i, j int, v lattice.Value) {
	if i == j && v != lattice.Par {
		panic(fmt.Sprintf("depfunc: diagonal entry (%d,%d) must be ||", i, j))
	}
	d.setIdx(i*d.ts.Len()+j, v)
}

// setIdx assigns a flat index, keeping the fingerprint invariant. All
// entry mutations funnel through it.
func (d *DepFunc) setIdx(idx int, v lattice.Value) {
	old := d.v[idx]
	if old == v {
		return
	}
	d.fp ^= entryHash(idx, old) ^ entryHash(idx, v)
	d.v[idx] = v
}

// JoinAt joins v into the entry at (i, j), returning true if the entry
// changed. This is the "generalize only as much as necessary" step.
func (d *DepFunc) JoinAt(i, j int, v lattice.Value) bool {
	idx := i*d.ts.Len() + j
	nv := lattice.Join(d.v[idx], v)
	if nv == d.v[idx] {
		return false
	}
	if i == j && nv != lattice.Par {
		panic(fmt.Sprintf("depfunc: diagonal entry (%d,%d) must be ||", i, j))
	}
	d.setIdx(idx, nv)
	return true
}

// Get returns the dependency value between two named tasks.
func (d *DepFunc) Get(t1, t2 string) (lattice.Value, error) {
	i, j := d.ts.Index(t1), d.ts.Index(t2)
	if i < 0 {
		return lattice.Par, fmt.Errorf("depfunc: unknown task %q", t1)
	}
	if j < 0 {
		return lattice.Par, fmt.Errorf("depfunc: unknown task %q", t2)
	}
	return d.At(i, j), nil
}

// MustGet is Get for known-good task names; it panics on error.
func (d *DepFunc) MustGet(t1, t2 string) lattice.Value {
	v, err := d.Get(t1, t2)
	if err != nil {
		panic(err)
	}
	return v
}

// Clone returns a deep copy sharing the (immutable) task set.
func (d *DepFunc) Clone() *DepFunc {
	cp := &DepFunc{ts: d.ts, v: make([]lattice.Value, len(d.v)), fp: d.fp}
	copy(cp.v, d.v)
	return cp
}

// Equal reports whether two dependency functions over the same task
// set have identical entries.
func (d *DepFunc) Equal(other *DepFunc) bool {
	if d.ts != other.ts && !d.ts.Equal(other.ts) {
		return false
	}
	if d.fp != other.fp {
		// Different fingerprints prove different entries.
		return false
	}
	for i := range d.v {
		if d.v[i] != other.v[i] {
			return false
		}
	}
	return true
}

// Leq reports the pointwise partial order ⊑D of Definition 5:
// d ⊑ other iff every entry of d is ⊑ the corresponding entry of
// other.
func (d *DepFunc) Leq(other *DepFunc) bool {
	for i := range d.v {
		if !lattice.Leq(d.v[i], other.v[i]) {
			return false
		}
	}
	return true
}

// Lt reports strict pointwise order.
func (d *DepFunc) Lt(other *DepFunc) bool {
	return d.Leq(other) && !d.Equal(other)
}

// Join returns the pointwise least upper bound of d and other as a new
// function. Both operands are unchanged.
func (d *DepFunc) Join(other *DepFunc) *DepFunc {
	out := d.Clone()
	out.JoinWith(other)
	return out
}

// JoinWith joins other into d in place.
func (d *DepFunc) JoinWith(other *DepFunc) {
	for i := range d.v {
		d.setIdx(i, lattice.Join(d.v[i], other.v[i]))
	}
}

// Meet returns the pointwise greatest lower bound as a new function.
func (d *DepFunc) Meet(other *DepFunc) *DepFunc {
	out := d.Clone()
	for i := range out.v {
		out.setIdx(i, lattice.Meet(out.v[i], other.v[i]))
	}
	return out
}

// Weight is the weight function of Definition 8: the sum over all
// ordered task pairs of the lattice distance of the entry. More
// general hypotheses weigh more.
func (d *DepFunc) Weight() int {
	w := 0
	for _, v := range d.v {
		w += lattice.Distance(v)
	}
	return w
}

// Key returns a compact canonical encoding of the matrix, usable as a
// map key for deduplication.
func (d *DepFunc) Key() string {
	b := make([]byte, len(d.v))
	for i, v := range d.v {
		b[i] = '0' + byte(v)
	}
	return string(b)
}

// JoinAll returns the pointwise least upper bound of all the given
// functions (the paper's ⊔D* used as the final result when the
// algorithm does not converge). It returns nil for an empty slice.
func JoinAll(ds []*DepFunc) *DepFunc {
	if len(ds) == 0 {
		return nil
	}
	out := ds[0].Clone()
	for _, d := range ds[1:] {
		out.JoinWith(d)
	}
	return out
}

// MostSpecific returns the subset of ds that is not redundant: d is
// redundant iff some other element is strictly more specific than d
// (∃d' ⊑ d, d' ≠ d). Exact duplicates are unified first. The relative
// order of survivors is preserved from ds.
func MostSpecific(ds []*DepFunc) []*DepFunc {
	// Unify duplicates.
	seen := make(map[string]bool, len(ds))
	uniq := make([]*DepFunc, 0, len(ds))
	for _, d := range ds {
		k := d.Key()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, d)
		}
	}
	// Sort indices by weight: a hypothesis can only be dominated by
	// one of smaller or equal weight (Distance is strictly monotonic
	// on the lattice order, so d' ⊏ d implies Weight(d') < Weight(d)).
	idx := make([]int, len(uniq))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return uniq[idx[a]].Weight() < uniq[idx[b]].Weight() })
	redundant := make([]bool, len(uniq))
	for a := 0; a < len(idx); a++ {
		i := idx[a]
		if redundant[i] {
			continue
		}
		for b := a + 1; b < len(idx); b++ {
			j := idx[b]
			if redundant[j] {
				continue
			}
			if uniq[i].Lt(uniq[j]) {
				redundant[j] = true
			}
		}
	}
	out := make([]*DepFunc, 0, len(uniq))
	for i, d := range uniq {
		if !redundant[i] {
			out = append(out, d)
		}
	}
	return out
}

// Table renders the dependency function as the square table layout
// used throughout the paper, e.g.
//
//	      t1   t2   t3   t4
//	t1    ||   ->?  ->?  ->
//	t2    <-   ||   ||   ->
//	t3    <-   ||   ||   ->
//	t4    <-   <-?  <-?  ||
func (d *DepFunc) Table() string {
	n := d.ts.Len()
	colw := 6 // widest value "<->?" plus separating spaces
	for _, name := range d.ts.names {
		if len(name)+2 > colw {
			colw = len(name) + 2
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		row := ""
		for _, c := range cells {
			row += c
			for k := len(c); k < colw; k++ {
				row += " "
			}
		}
		sb.WriteString(strings.TrimRight(row, " "))
		sb.WriteByte('\n')
	}
	header := append([]string{""}, d.ts.names...)
	line(header)
	cells := make([]string, n+1)
	for i := 0; i < n; i++ {
		cells[0] = d.ts.names[i]
		for j := 0; j < n; j++ {
			cells[j+1] = d.At(i, j).String()
		}
		line(cells)
	}
	return sb.String()
}

// String returns the table rendering.
func (d *DepFunc) String() string { return d.Table() }

// ParseTable parses the Table rendering back into a DepFunc. The first
// line must hold the task names; each following line a task name and N
// dependency values.
func ParseTable(s string) (*DepFunc, error) {
	lines := make([]string, 0, 8)
	for _, ln := range strings.Split(s, "\n") {
		if strings.TrimSpace(ln) != "" {
			lines = append(lines, ln)
		}
	}
	if len(lines) < 2 {
		return nil, fmt.Errorf("depfunc: table too short")
	}
	names := strings.Fields(lines[0])
	ts, err := NewTaskSet(names)
	if err != nil {
		return nil, err
	}
	if len(lines)-1 != len(names) {
		return nil, fmt.Errorf("depfunc: table has %d rows, want %d", len(lines)-1, len(names))
	}
	d := Bottom(ts)
	for r, ln := range lines[1:] {
		fields := strings.Fields(ln)
		if len(fields) != len(names)+1 {
			return nil, fmt.Errorf("depfunc: row %d has %d fields, want %d", r, len(fields), len(names)+1)
		}
		i := ts.Index(fields[0])
		if i < 0 {
			return nil, fmt.Errorf("depfunc: row task %q not in header", fields[0])
		}
		for j, f := range fields[1:] {
			v, err := lattice.ParseValue(f)
			if err != nil {
				return nil, fmt.Errorf("depfunc: row %q column %q: %w", fields[0], names[j], err)
			}
			if i == j && v != lattice.Par {
				return nil, fmt.Errorf("depfunc: diagonal entry (%s,%s) must be ||", fields[0], names[j])
			}
			d.Set(i, j, v)
		}
	}
	return d, nil
}

// MustParseTable is ParseTable for literal known-good tables; it
// panics on error.
func MustParseTable(s string) *DepFunc {
	d, err := ParseTable(s)
	if err != nil {
		panic(err)
	}
	return d
}

// RelaxViolations generalizes, in place and minimally, every entry
// whose unconditional execution constraint is violated by the given
// set of executed tasks: if d(a,b) ∈ {→, ←, ↔} and a executed while b
// did not, the entry is relaxed to its conditional counterpart. This
// is the end-of-period "test conditional dependencies" step of the
// algorithm. It returns the number of relaxed entries.
func (d *DepFunc) RelaxViolations(executed func(task int) bool) int {
	return d.RelaxViolationsFunc(executed, nil)
}

// RelaxViolationsFunc is RelaxViolations with an audit callback:
// onRelax (when non-nil) is invoked for every relaxed entry with its
// position and the old→new lattice transition, in row-major order.
// The provenance recorder uses it to attribute end-of-period
// relaxations.
func (d *DepFunc) RelaxViolationsFunc(executed func(task int) bool, onRelax func(i, j int, old, new lattice.Value)) int {
	n := d.ts.Len()
	relaxed := 0
	for i := 0; i < n; i++ {
		if !executed(i) {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := d.At(i, j)
			if lattice.HasExecConstraint(v) && !executed(j) {
				d.Set(i, j, lattice.Relax(v))
				relaxed++
				if onRelax != nil {
					onRelax(i, j, v, lattice.Relax(v))
				}
			}
		}
	}
	return relaxed
}

// Entries calls fn for every off-diagonal entry.
func (d *DepFunc) Entries(fn func(i, j int, v lattice.Value)) {
	n := d.ts.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				fn(i, j, d.At(i, j))
			}
		}
	}
}
