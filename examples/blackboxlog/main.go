// Command blackboxlog demonstrates the full black-box workflow on a
// raw, unmarked event log, the way a real logging device delivers it:
//
//  1. capture a flat stream of timestamped events with no period
//     markers (simulated here from the distributed 18-task
//     controller, then flattened and stripped);
//  2. segment it into fixed-length periods from the known system
//     period;
//  3. feed periods one at a time into the incremental online learner,
//     watching the hypothesis set evolve;
//  4. add an analyst-supplied negative example ("the sink task Q never
//     runs without the pipeline task P") and observe the consistent
//     subset;
//  5. enumerate the system's operation modes and cross-check them
//     against the learned model.
package main

import (
	"fmt"
	"log"

	modelgen "github.com/blackbox-rt/modelgen"
)

func main() {
	// --- 1. Raw capture -------------------------------------------------
	m := modelgen.GMStyleDistributedModel()
	sim, err := modelgen.Simulate(m, modelgen.SimOptions{
		Periods: modelgen.CaseStudyPeriods,
		Seed:    modelgen.CaseStudySeed,
	})
	if err != nil {
		log.Fatalf("simulation failed: %v", err)
	}
	// Flatten to a raw event stream and drop the period markers — this
	// is all a bus sniffer gives you.
	var raw []modelgen.Event
	for _, ev := range sim.Trace.Events() {
		if ev.Kind != modelgen.PeriodMark {
			raw = append(raw, ev)
		}
	}
	fmt.Printf("raw capture: %d events, no period markers\n", len(raw))

	// --- 2. Period segmentation -----------------------------------------
	tr, err := modelgen.TraceFromEventsPeriodic(m.TaskNames(), raw, 0, m.Period)
	if err != nil {
		log.Fatalf("segmentation failed: %v", err)
	}
	st := tr.Stats()
	fmt.Printf("segmented: %d periods, %d messages, %d event pairs\n\n",
		st.Periods, st.Messages, st.EventPairs)

	// --- 3. Incremental learning ----------------------------------------
	o, err := modelgen.NewOnlineLearner(tr.Tasks, modelgen.LearnOptions{Bound: 16})
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			log.Fatalf("period %d: %v", i, err)
		}
		if i == 0 || i == 4 || i == len(tr.Periods)-1 {
			snap, err := o.Result()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("after period %2d: %d hypotheses, LUB weight %d\n",
				i+1, len(snap.Hypotheses), snap.LUB.Weight())
		}
	}
	res, err := o.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// --- 4. Negative example ---------------------------------------------
	// The analyst knows the sink never fires without the pipeline:
	// declare a period executing Q alone as impossible and re-learn.
	neg := negativePeriod("Q")
	resNeg, err := modelgen.Learn(tr, modelgen.LearnOptions{
		Bound:     16,
		Negatives: []*modelgen.Period{neg},
	})
	if err != nil {
		log.Fatalf("learning with negative failed: %v", err)
	}
	fmt.Printf("with the negative example: %d hypotheses (%d rejected as inconsistent)\n\n",
		len(resNeg.Hypotheses), resNeg.Stats.NegativeRejections)

	// --- 5. Mode analysis -------------------------------------------------
	rep := modelgen.AnalyzeModes(tr, res.LUB)
	fmt.Printf("observed operation modes: %d (tasks always on: %v)\n",
		len(rep.Modes), rep.AlwaysOn)
	for i, mode := range rep.Modes {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(rep.Modes)-3)
			break
		}
		fmt.Printf("  %2d periods: %s\n", mode.Count(), mode.Key())
	}
	if len(rep.Violations) == 0 {
		fmt.Println("learned model is consistent with every observed mode")
	} else {
		log.Fatalf("mode violations: %v", rep.Violations)
	}

	fmt.Println()
	fmt.Printf("key discovered properties: d(A,L)=%s  d(B,M)=%s  d(Q,O)=%s\n",
		res.LUB.MustGet("A", "L"), res.LUB.MustGet("B", "M"), res.LUB.MustGet("Q", "O"))
}

// negativePeriod builds a message-free period executing only the given
// tasks — the analyst's encoding of a forbidden behaviour.
func negativePeriod(only ...string) *modelgen.Period {
	execs := map[string]modelgen.Interval{}
	t := int64(1 << 40) // far from any real period
	for _, name := range only {
		execs[name] = modelgen.Interval{Start: t, End: t + 10}
		t += 20
	}
	return &modelgen.Period{Index: -1, Execs: execs}
}
