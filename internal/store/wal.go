// Package store is the per-stream durability layer of the serving
// path: an append-only write-ahead log of period records plus a
// compactor that periodically folds the log into a base snapshot.
//
// On-disk layout, one directory per stream under the store root:
//
//	<root>/<stream>/manifest.json   commit point: current epoch + meta
//	<root>/<stream>/base-<E>.json   base snapshot of epoch E (may be empty)
//	<root>/<stream>/wal-<E>.log     period records appended since the base
//	<root>/quarantine/              corrupt state moved aside, never deleted
//
// Every learned period appends one framed record to the WAL; a
// compaction writes a fresh base under the next epoch and commits it
// by atomically renaming a new manifest over the old one. Recovery
// reads the manifest, opens that epoch's base and WAL, truncates any
// torn tail after the last intact frame, and sweeps files of other
// epochs — so a crash at any point (mid-append, mid-compaction,
// mid-rename) loses at most the record being written.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame layout of one WAL record:
//
//	offset  size  field
//	0       4     payload length (little-endian u32)
//	4       4     CRC-32C of bytes 8..end (little-endian u32)
//	8       8     seq: periods learned up to and including this record
//	16      4     model generation the record belongs to
//	20      1     flags (bit 0: record opens a new generation)
//	21      len   payload (opaque to the store; serve stores JSON)
const (
	frameHeaderSize = 21
	frameCRCFrom    = 8 // crc covers seq..payload

	// maxFramePayload bounds a single record; a length field beyond it
	// is treated as a torn/corrupt tail, not an allocation request.
	maxFramePayload = 64 << 20

	flagFork = 1 << 0
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one WAL entry: an opaque payload tagged with the stream's
// learned-period sequence number and model generation.
type Record struct {
	// Seq is the total number of periods learned up to and including
	// this record, across generations. Appends must be strictly
	// increasing.
	Seq uint64
	// Generation is the model generation the record belongs to.
	Generation uint32
	// Fork marks the record that opens a new generation.
	Fork bool
	// Payload is the serialized period record; the store does not
	// interpret it.
	Payload []byte
}

// errFrame is the internal "bad frame" marker; decodeFrames turns it
// into a clean tail truncation, never an error.
var errFrame = errors.New("store: bad frame")

// appendFrame appends the framed encoding of rec to buf.
func appendFrame(buf []byte, rec Record) ([]byte, error) {
	if len(rec.Payload) > maxFramePayload {
		return nil, fmt.Errorf("store: record payload %d bytes exceeds the %d-byte frame cap", len(rec.Payload), maxFramePayload)
	}
	var flags byte
	if rec.Fork {
		flags |= flagFork
	}
	off := len(buf)
	buf = append(buf, make([]byte, frameHeaderSize)...)
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(rec.Payload)))
	binary.LittleEndian.PutUint64(buf[off+8:], rec.Seq)
	binary.LittleEndian.PutUint32(buf[off+16:], rec.Generation)
	buf[off+20] = flags
	buf = append(buf, rec.Payload...)
	crc := crc32.Checksum(buf[off+frameCRCFrom:], castagnoli)
	binary.LittleEndian.PutUint32(buf[off+4:], crc)
	return buf, nil
}

// decodeFrame decodes the frame starting at b. It returns the record
// and the total frame size, or errFrame when b does not start with an
// intact frame (short, oversized length, or checksum mismatch). The
// returned payload aliases b.
func decodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameHeaderSize {
		return Record{}, 0, errFrame
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxFramePayload || len(b) < frameHeaderSize+int(n) {
		return Record{}, 0, errFrame
	}
	size := frameHeaderSize + int(n)
	want := binary.LittleEndian.Uint32(b[4:])
	if crc32.Checksum(b[frameCRCFrom:size], castagnoli) != want {
		return Record{}, 0, errFrame
	}
	// Unknown flag bits mean a frame this binary cannot interpret
	// faithfully; stopping here keeps recovery prefix-exact.
	if b[20]&^flagFork != 0 {
		return Record{}, 0, errFrame
	}
	return Record{
		Seq:        binary.LittleEndian.Uint64(b[8:]),
		Generation: binary.LittleEndian.Uint32(b[16:]),
		Fork:       b[20]&flagFork != 0,
		Payload:    b[frameHeaderSize:size],
	}, size, nil
}

// decodeFrames decodes records from the start of b until the first
// byte range that is not an intact frame, returning the records and
// the clean prefix length. A partial or corrupt tail is expected
// after a crash; the caller truncates to good.
func decodeFrames(b []byte) (recs []Record, good int) {
	for good < len(b) {
		rec, n, err := decodeFrame(b[good:])
		if err != nil {
			break
		}
		recs = append(recs, rec)
		good += n
	}
	return recs, good
}

// copyRecords deep-copies decoded records so they outlive the read
// buffer they alias.
func copyRecords(recs []Record) []Record {
	out := make([]Record, len(recs))
	for i, r := range recs {
		r.Payload = append([]byte(nil), r.Payload...)
		out[i] = r
	}
	return out
}
