package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCreateAppendReopenLoad(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	s, err := st.Create("s1", json.RawMessage(`{"tasks":["a","b"]}`), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(Record{Seq: 4, Payload: []byte("dup")}); err == nil {
		t.Fatal("non-monotone seq accepted")
	}
	stats := s.Stats()
	if stats.WALRecords != len(recs) || stats.LastSeq != 4 || stats.LastGeneration != 2 {
		t.Fatalf("stats after append: %+v", stats)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := openTestStore(t, dir).OpenStream("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	base, got, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if base != nil {
		t.Fatalf("empty base read back as %d bytes", len(base))
	}
	if len(got) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Seq != recs[i].Seq || !bytes.Equal(got[i].Payload, recs[i].Payload) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
	if string(s2.Stats().Meta) != `{"tasks":["a","b"]}` {
		t.Fatalf("meta: %s", s2.Stats().Meta)
	}
	// Appending continues after the recovered tail.
	if err := s2.Append(Record{Seq: 5, Generation: 2, Payload: []byte("more")}); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	s, err := st.Create("s1", nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	cleanLen := s.Stats().WALBytes
	s.Close()

	walPath := filepath.Join(dir, "s1", walName(1))
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}) // torn frame start
	f.Close()

	s2, err := openTestStore(t, dir).OpenStream("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats(); got.WALRecords != 4 || got.WALBytes != cleanLen {
		t.Fatalf("after torn-tail recovery: %+v, want 4 records / %d bytes", got, cleanLen)
	}
	if fi, _ := os.Stat(walPath); fi.Size() != cleanLen {
		t.Fatalf("tail not truncated: %d bytes on disk, want %d", fi.Size(), cleanLen)
	}
	if err := s2.Append(Record{Seq: 5, Generation: 2, Payload: []byte("post-recovery")}); err != nil {
		t.Fatal(err)
	}
	_, recs, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[4].Seq != 5 {
		t.Fatalf("post-recovery load: %d records", len(recs))
	}
}

func TestCompactionEpochFlow(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	s, err := st.Create("s1", nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	base := []byte(`{"model":"folded"}`)
	if err := s.Compact(base, 4, []byte(`{"v":2}`), time.Unix(0, 12345)); err != nil {
		t.Fatal(err)
	}
	sdir := filepath.Join(dir, "s1")
	for _, want := range []struct {
		name   string
		exists bool
	}{
		{baseName(1), false}, {walName(1), false},
		{baseName(2), true}, {walName(2), true},
	} {
		_, err := os.Stat(filepath.Join(sdir, want.name))
		if (err == nil) != want.exists {
			t.Fatalf("%s: exists=%v, want %v", want.name, err == nil, want.exists)
		}
	}
	got := s.Stats()
	if got.WALRecords != 0 || got.BasePeriods != 4 || got.CompactedAtUnixNS != 12345 {
		t.Fatalf("stats after compact: %+v", got)
	}
	b, recs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, base) || len(recs) != 0 {
		t.Fatalf("load after compact: %d base bytes, %d records", len(b), len(recs))
	}
	// Seq continues from the folded count.
	if err := s.Append(Record{Seq: 4, Payload: []byte("stale")}); err == nil {
		t.Fatal("append at folded seq accepted")
	}
	if err := s.Append(Record{Seq: 5, Generation: 2, Payload: []byte("next")}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Reopen sees the committed epoch.
	s2, err := openTestStore(t, dir).OpenStream("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats(); got.BasePeriods != 4 || got.WALRecords != 1 || got.LastSeq != 5 {
		t.Fatalf("reopened stats: %+v", got)
	}
}

func TestScanAndQuarantine(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("s%d", i)
		s, err := st.Create(id, json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Append(Record{Seq: 1, Generation: 1, Payload: []byte("p")}); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	// Corrupt one manifest beyond recognition.
	if err := os.WriteFile(filepath.Join(dir, "s1", "manifest.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := openTestStore(t, dir).Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) != 2 || len(res.Quarantined) != 1 || res.Quarantined[0] != "s1" {
		t.Fatalf("scan: %+v", res)
	}
	for _, sm := range res.Streams {
		if sm.WALRecords != 1 || sm.LastSeq != 1 || sm.LastGeneration != 1 {
			t.Fatalf("scan meta: %+v", sm)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "s1", "manifest.json")); err != nil {
		t.Fatalf("quarantined stream not preserved: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "s1")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt stream still in place: %v", err)
	}
	// A second scan is stable.
	res2, err := openTestStore(t, dir).Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Streams) != 2 || len(res2.Quarantined) != 0 {
		t.Fatalf("rescan: %+v", res2)
	}
}

func TestJitteredThresholdSpread(t *testing.T) {
	const base, frac = 1000, 0.2
	lo, hi := int(base*(1-frac)), int(base*(1+frac))
	seen := map[int]bool{}
	sum := 0
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("stream-%03d", i)
		v := JitteredThreshold(id, base, frac)
		if v < lo || v > hi {
			t.Fatalf("%s: threshold %d outside [%d,%d]", id, v, lo, hi)
		}
		if v != JitteredThreshold(id, base, frac) {
			t.Fatalf("%s: jitter not deterministic", id)
		}
		seen[v] = true
		sum += v
	}
	// The whole point: thresholds spread out instead of stampeding.
	if len(seen) < 100 {
		t.Fatalf("only %d distinct thresholds across 500 streams", len(seen))
	}
	if mean := sum / 500; mean < base-base/10 || mean > base+base/10 {
		t.Fatalf("jitter is biased: mean %d, base %d", mean, base)
	}
	if JitteredThreshold("x", base, 0) != base || JitteredThreshold("x", base, -1) != base {
		t.Fatal("disabled jitter must return the base unchanged")
	}
}

func TestInvalidStreamID(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	for _, id := range []string{"", "a/b", "..", "über", "x y"} {
		if _, err := st.Create(id, nil, nil, 0); err == nil {
			t.Fatalf("Create(%q) accepted", id)
		}
		if _, err := st.OpenStream(id); err == nil {
			t.Fatalf("OpenStream(%q) accepted", id)
		}
	}
}

// --- crash-injection equivalence -----------------------------------
//
// The payloads below are real learner deltas and the base is a real
// learner snapshot, so "recovered state equals the durable prefix" is
// checked at full model fidelity, not just byte fidelity.

var crashOpt = learner.Options{Bound: 8}

// feedThrough runs a learner over periods, appending one delta per
// period to s starting at seq. It stops at the first append error.
func feedThrough(t *testing.T, s *Stream, o *learner.Online, periods []*trace.Period, seq uint64) (uint64, error) {
	t.Helper()
	for _, p := range periods {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
		d, err := o.PeriodDelta()
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		seq++
		if err := s.Append(Record{Seq: seq, Generation: 1, Payload: b}); err != nil {
			return seq, err
		}
	}
	return seq, nil
}

// hydrate rebuilds a learner from a stream's durable state.
func hydrate(t *testing.T, s *Stream, tasks []string) *learner.Online {
	t.Helper()
	base, recs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	var o *learner.Online
	if base == nil {
		if o, err = learner.NewOnline(tasks, crashOpt); err != nil {
			t.Fatal(err)
		}
	} else {
		var snap learner.Snapshot
		if err := json.Unmarshal(base, &snap); err != nil {
			t.Fatal(err)
		}
		if o, err = learner.RestoreOnline(&snap, crashOpt); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range recs {
		var d learner.Delta
		if err := json.Unmarshal(r.Payload, &d); err != nil {
			t.Fatal(err)
		}
		if err := o.ApplyDelta(&d); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

// reference returns the snapshot of a fresh learner fed n periods.
func reference(t *testing.T, tasks []string, periods []*trace.Period, n int) *learner.Snapshot {
	t.Helper()
	o, err := learner.NewOnline(tasks, crashOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range periods[:n] {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

var errBoom = errors.New("injected crash")

// TestCrashDuringAppend: a crash mid-append (torn frame on disk)
// recovers to exactly the pre-append durable state.
func TestCrashDuringAppend(t *testing.T) {
	tr := trace.PaperFigure2()
	periods := append(append([]*trace.Period(nil), tr.Periods...), tr.Periods...)
	const crashAt = 5 // crash while appending the 5th record

	dir := t.TempDir()
	st := openTestStore(t, dir)
	appends := 0
	SetCrashHook(st, func(point string) error {
		if point == "append" {
			if appends++; appends == crashAt {
				return errBoom
			}
		}
		return nil
	})
	s, err := st.Create("s1", nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	o, err := learner.NewOnline(tr.Tasks, crashOpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := feedThrough(t, s, o, periods, 0); !errors.Is(err, errBoom) {
		t.Fatalf("crash not injected: %v", err)
	}
	s.Close()

	s2, err := openTestStore(t, dir).OpenStream("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats(); got.WALRecords != crashAt-1 || got.LastSeq != crashAt-1 {
		t.Fatalf("recovered stats: %+v, want %d intact records", got, crashAt-1)
	}
	got, err := hydrate(t, s2, tr.Tasks).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, tr.Tasks, periods, crashAt-1)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state diverges from the durable prefix\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestCrashDuringCompaction: a crash at every stage of the compaction
// sequence leaves the stream recoverable to the full pre-compaction
// state (before the manifest commit) or the compacted state (after).
func TestCrashDuringCompaction(t *testing.T) {
	tr := trace.PaperFigure2()
	periods := append(append([]*trace.Period(nil), tr.Periods...), tr.Periods...)
	for _, point := range []string{"compact.start", "compact.base-written", "compact.manifest-tmp"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			st := openTestStore(t, dir)
			s, err := st.Create("s1", nil, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			o, err := learner.NewOnline(tr.Tasks, crashOpt)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := feedThrough(t, s, o, periods, 0)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := o.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			baseJSON, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			SetCrashHook(st, func(p string) error {
				if p == point {
					return errBoom
				}
				return nil
			})
			if err := s.Compact(baseJSON, seq, nil, time.Unix(0, 1)); !errors.Is(err, errBoom) {
				t.Fatalf("crash not injected: %v", err)
			}
			s.Close()

			s2, err := openTestStore(t, dir).OpenStream("s1")
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			got, err := hydrate(t, s2, tr.Tasks).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			want := reference(t, tr.Tasks, periods, len(periods))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered state diverges after crash at %s", point)
			}
			// The aborted compaction left no stale epoch files behind
			// after recovery's sweep.
			ents, err := os.ReadDir(filepath.Join(dir, "s1"))
			if err != nil {
				t.Fatal(err)
			}
			for _, ent := range ents {
				if ent.Name() != "manifest.json" && ent.Name() != baseName(s2.epoch) && ent.Name() != walName(s2.epoch) {
					t.Fatalf("stale file survived recovery: %s", ent.Name())
				}
			}
			// And a clean retry compacts successfully.
			if err := s2.Compact(baseJSON, seq, nil, time.Unix(0, 2)); err != nil {
				t.Fatal(err)
			}
			if got := s2.Stats(); got.WALRecords != 0 || got.BasePeriods != seq {
				t.Fatalf("retry compact stats: %+v", got)
			}
			got2, err := hydrate(t, s2, tr.Tasks).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got2, want) {
				t.Fatal("state diverges after post-crash compaction retry")
			}
		})
	}
}

// TestWALReplayMatchesDirectRun: the full WAL path (empty base + one
// delta per period, reopen, hydrate) reproduces a straight-through
// run bit-identically — the store-level restart-equivalence pin.
func TestWALReplayMatchesDirectRun(t *testing.T) {
	tr := trace.PaperFigure2()
	periods := append(append([]*trace.Period(nil), tr.Periods...), tr.Periods...)
	dir := t.TempDir()
	st := openTestStore(t, dir)
	s, err := st.Create("s1", nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	o, err := learner.NewOnline(tr.Tasks, crashOpt)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := feedThrough(t, s, o, periods[:len(periods)/2], 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Restart: hydrate, keep feeding through a second handle.
	s2, err := openTestStore(t, dir).OpenStream("s1")
	if err != nil {
		t.Fatal(err)
	}
	o2 := hydrate(t, s2, tr.Tasks)
	if _, err := feedThrough(t, s2, o2, periods[len(periods)/2:], seq); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	// Final hydration equals the uninterrupted reference run.
	s3, err := openTestStore(t, dir).OpenStream("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	got, err := hydrate(t, s3, tr.Tasks).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, tr.Tasks, periods, len(periods))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("WAL-replayed state diverges from the direct run")
	}
}
