package can

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/blackbox-rt/modelgen/internal/trace"
)

// This file parses candump-style CAN logs — the raw input a logging
// device on the paper's bus would produce — into the message edge
// events the trace layer consumes:
//
//	(1690000000.123456) can0 123#DEADBEEF
//	(1690000000.124012) can0 1A0#
//
// Each line is one completed frame: a parenthesised decimal-seconds
// timestamp (recorded at the frame's rising edge), an interface name,
// and ID#DATA with a hexadecimal 11-bit identifier and a 0..8-byte
// hexadecimal payload. Blank lines and '#'-prefixed comments are
// skipped.

// Typed parse errors, matchable with errors.Is. Every returned error
// wraps exactly one of these plus the offending line number.
var (
	// ErrTruncatedFrame flags a line with missing fields or an ID#DATA
	// field without the '#' separator.
	ErrTruncatedFrame = errors.New("can: truncated log line")
	// ErrBadTimestamp flags an unparsable or unparenthesised timestamp.
	ErrBadTimestamp = errors.New("can: unparsable frame timestamp")
	// ErrNonMonotoneTimestamp flags a frame timestamped before its
	// predecessor; a single logging device's clock never runs backward.
	ErrNonMonotoneTimestamp = errors.New("can: frame timestamp precedes previous frame")
	// ErrBadIdentifier flags a non-hexadecimal or out-of-range (>11
	// bit) arbitration identifier.
	ErrBadIdentifier = errors.New("can: bad arbitration identifier")
	// ErrBadPayload flags a payload with odd hex-digit count, invalid
	// hex digits, or more than 8 bytes.
	ErrBadPayload = errors.New("can: bad frame payload")
)

// LogRecord is one parsed log line.
type LogRecord struct {
	// Time is the frame's rising edge in microseconds.
	Time int64
	// Interface is the logging interface name ("can0").
	Interface string
	// ID is the 11-bit arbitration identifier.
	ID int
	// DLC is the payload length in bytes.
	DLC int
}

// ParseLog parses a candump-style log. Records are validated as a
// stream: timestamps must be non-decreasing across the whole log.
func ParseLog(r io.Reader) ([]LogRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var recs []LogRecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseLogLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if len(recs) > 0 && rec.Time < recs[len(recs)-1].Time {
			return nil, fmt.Errorf("line %d: %w: %dµs after %dµs",
				lineNo, ErrNonMonotoneTimestamp, rec.Time, recs[len(recs)-1].Time)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("can: %w", err)
	}
	return recs, nil
}

func parseLogLine(line string) (LogRecord, error) {
	var rec LogRecord
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return rec, fmt.Errorf("%w: want \"(TIME) IFACE ID#DATA\", got %d fields", ErrTruncatedFrame, len(fields))
	}
	ts := fields[0]
	if len(ts) < 3 || ts[0] != '(' || ts[len(ts)-1] != ')' {
		return rec, fmt.Errorf("%w: %q is not parenthesised", ErrBadTimestamp, ts)
	}
	t, err := parseSeconds(ts[1 : len(ts)-1])
	if err != nil {
		return rec, fmt.Errorf("%w: %q", ErrBadTimestamp, ts)
	}
	rec.Time = t
	rec.Interface = fields[1]
	id, data, ok := strings.Cut(fields[2], "#")
	if !ok {
		return rec, fmt.Errorf("%w: frame field %q has no '#' separator", ErrTruncatedFrame, fields[2])
	}
	idVal, err := strconv.ParseUint(id, 16, 32)
	if err != nil || idVal > 0x7FF {
		return rec, fmt.Errorf("%w: %q", ErrBadIdentifier, id)
	}
	rec.ID = int(idVal)
	if len(data)%2 != 0 {
		return rec, fmt.Errorf("%w: odd hex-digit count in %q", ErrBadPayload, data)
	}
	rec.DLC = len(data) / 2
	if rec.DLC > 8 {
		return rec, fmt.Errorf("%w: %d bytes exceeds the 8-byte CAN maximum", ErrBadPayload, rec.DLC)
	}
	for i := 0; i < len(data); i++ {
		if !isHexDigit(data[i]) {
			return rec, fmt.Errorf("%w: invalid hex digit %q", ErrBadPayload, data[i])
		}
	}
	return rec, nil
}

// parseSeconds converts a decimal-seconds timestamp ("1690.123456")
// to integer microseconds without going through floating point, so
// large epochs parse exactly.
func parseSeconds(s string) (int64, error) {
	whole, frac, _ := strings.Cut(s, ".")
	sec, err := strconv.ParseInt(whole, 10, 64)
	if err != nil || sec < 0 {
		return 0, fmt.Errorf("bad seconds %q", whole)
	}
	us := int64(0)
	if frac != "" {
		if len(frac) > 6 {
			frac = frac[:6]
		}
		for len(frac) < 6 {
			frac += "0"
		}
		us, err = strconv.ParseInt(frac, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad fraction %q", frac)
		}
	}
	return sec*1_000_000 + us, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// LogEvents converts parsed log records into the trace layer's
// message edge events: each frame becomes a rise at its log timestamp
// and a fall one worst-case frame duration later on a bus at the
// given bit rate. Occurrence labels are "0xID@seq" with a per-ID
// sequence number, matching the sim's labeling convention of unique
// labels per occurrence.
func LogEvents(recs []LogRecord, bitRate int64) ([]trace.Event, error) {
	if bitRate <= 0 {
		return nil, fmt.Errorf("can: bit rate must be positive, got %d", bitRate)
	}
	bus, err := New(bitRate)
	if err != nil {
		return nil, err
	}
	seq := map[int]int{}
	events := make([]trace.Event, 0, 2*len(recs))
	for _, rec := range recs {
		label := fmt.Sprintf("0x%03X@%d", rec.ID, seq[rec.ID])
		seq[rec.ID]++
		events = append(events,
			trace.Event{Time: rec.Time, Kind: trace.MsgRise, Name: label},
			trace.Event{Time: rec.Time + bus.FrameDuration(rec.DLC), Kind: trace.MsgFall, Name: label},
		)
	}
	return events, nil
}
