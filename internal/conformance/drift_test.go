package conformance

import (
	"strings"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// flipEntry builds the drift-flip corpus entry in memory: 30
// stationary periods of t1→(m1)→t2, then 20 with t1 alone.
func flipEntry() *Entry {
	return &Entry{
		Manifest: Manifest{
			Name:            "drift-flip",
			Bounds:          []int{4},
			DriftFlipPeriod: 30,
			DriftWindow:     DefaultDriftWindow,
		},
		Trace: driftFlipTrace(30, 20),
	}
}

func driftViolations(t *testing.T, e *Entry) []Violation {
	t.Helper()
	vs, err := DriftDetection(e, learner.Options{Bound: maxBound(e.Bounds), Policy: e.Policy()})
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

func TestDriftOracleDetectsFlip(t *testing.T) {
	if vs := driftViolations(t, flipEntry()); len(vs) > 0 {
		t.Fatalf("drift oracle failed on the genuine flip entry: %v", vs)
	}
}

// TestDriftOracleCatchesMislabeledStationary is the oracle's mutation
// test in one direction: a flipped trace declared stationary must be
// reported as a false alarm, proving the oracle actually observes the
// monitor rather than vacuously passing.
func TestDriftOracleCatchesMislabeledStationary(t *testing.T) {
	e := flipEntry()
	e.DriftFlipPeriod, e.DriftWindow = 0, 0
	vs := driftViolations(t, e)
	if len(vs) == 0 {
		t.Fatal("oracle passed a flipped trace declared stationary")
	}
	if !strings.Contains(vs[0].Property, "stationary-false-alarm") {
		t.Fatalf("unexpected violation: %+v", vs[0])
	}
}

// TestDriftOracleCatchesMissedFlip is the other direction: a
// stationary trace declared as drifting must fail for want of an
// alarm.
func TestDriftOracleCatchesMissedFlip(t *testing.T) {
	e := &Entry{
		Manifest: Manifest{Name: "never-flips", Bounds: []int{4}, DriftFlipPeriod: 30},
		Trace:    driftFlipTrace(50, 0),
	}
	vs := driftViolations(t, e)
	if len(vs) == 0 {
		t.Fatal("oracle passed a stationary trace declared as drifting")
	}
	if !strings.Contains(vs[0].Property, "flip-undetected") {
		t.Fatalf("unexpected violation: %+v", vs[0])
	}
}

// TestDriftOracleEnforcesWindow: an impossible 1-period window must
// turn the (legitimately ~λ/(1−δ)-period) detection lag into a
// violation.
func TestDriftOracleEnforcesWindow(t *testing.T) {
	e := flipEntry()
	e.DriftWindow = 1
	vs := driftViolations(t, e)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Property, "detection-window") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no detection-window violation under a 1-period window: %v", vs)
	}
}

func TestLoadCorpusRejectsBadDriftManifest(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Entry)
		want string
	}{
		{"flip-outside-trace", func(e *Entry) { e.DriftFlipPeriod = len(e.Trace.Periods) }, "drift_flip_period"},
		{"window-without-flip", func(e *Entry) { e.DriftFlipPeriod = 0 }, "drift_window"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := flipEntry()
			e.Name = "bad"
			tc.mut(e)
			dir := t.TempDir()
			c := &Corpus{Version: CorpusVersion, Entries: []*Entry{e}}
			if err := WriteCorpus(dir, c); err != nil {
				t.Fatal(err)
			}
			_, err := LoadCorpus(dir)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error mentioning %q, got %v", tc.want, err)
			}
		})
	}
}

// TestDriftFlipTraceShape pins the generated two-regime trace: tasks,
// period counts and the exact flip boundary the manifest declares.
func TestDriftFlipTraceShape(t *testing.T) {
	tr := driftFlipTrace(30, 20)
	if len(tr.Tasks) != 2 || len(tr.Periods) != 50 {
		t.Fatalf("trace shape: %d tasks, %d periods", len(tr.Tasks), len(tr.Periods))
	}
	for i, p := range tr.Periods {
		stationary := i < 30
		if got := p.Executed("t2"); got != stationary {
			t.Fatalf("period %d: t2 executed = %v, want %v", i, got, stationary)
		}
		if got := len(p.Msgs) == 1; got != stationary {
			t.Fatalf("period %d: %d messages", i, len(p.Msgs))
		}
	}
	// Round-trips through the text format like any corpus trace.
	var sb strings.Builder
	if err := trace.Write(&sb, tr); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Periods) != len(tr.Periods) {
		t.Fatalf("round trip lost periods: %d -> %d", len(tr.Periods), len(back.Periods))
	}
}
