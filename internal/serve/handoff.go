package serve

import (
	"encoding/json"
	"errors"
	"fmt"

	"github.com/blackbox-rt/modelgen/internal/learner"
)

// Checkpoint handoff: the serve-level primitives a cluster router
// builds stream migration on. ExportStream drains a stream's ingest
// queue, snapshots its learner and drift monitor at the resulting
// period boundary, and removes the stream (including its durable
// state); ImportStream rebuilds the identical stream on another
// server from the exported envelope via learner.RestoreOnline.
//
// The drain-before-handoff contract: because the snapshot is taken on
// the owner goroutine through the same request channel as queries, it
// observes every period whose ingest was acknowledged before the
// export began — a migrated stream never loses an acked period, and a
// restored-and-replayed learner is bit-identical to one that never
// moved (TestSnapshotDuringIngest pins exactly this). Callers must
// stop routing new writes to the stream before exporting; the cluster
// layer does so by fencing the stream's epoch at the router.

// ErrNoStream reports an export of a stream this server does not own.
var ErrNoStream = errors.New("serve: no such stream")

// ErrStreamExists reports an import colliding with a stream this
// server already owns (the same sentinel create collisions map to
// 409 through).
var ErrStreamExists = errStreamExists

// ExportStream drains the stream's queue, captures its checkpoint
// envelope (the same schema bases use on disk), and removes the
// stream from this server — owner goroutine stopped, metrics
// unregistered, durable state deleted. It returns the envelope bytes
// and the stream's learned-period count (which can exceed the
// snapshot's own period count across drift generation forks).
//
// On a snapshot failure (dead learner, failed hydration) the stream
// is left in place untouched and the error returned, so a failed
// handoff never strands state.
func (sv *Server) ExportStream(id string) ([]byte, int, error) {
	// Unpublish first: once the export begins, ingest and queries must
	// not find the stream, or a post-drain period could slip between
	// the snapshot and the removal.
	sv.mu.Lock()
	s, ok := sv.streams[id]
	if ok {
		delete(sv.streams, id)
		if sv.mStreams != nil {
			sv.mStreams.Set(int64(len(sv.streams)))
		}
	}
	sv.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("serve: export %q: %w", id, ErrNoStream)
	}

	var cf checkpointFile
	var learned int
	var snapErr error
	err := s.do(func(o *learner.Online) {
		if o == nil {
			snapErr = s.deadErr()
			return
		}
		snap, err := o.Snapshot()
		if err != nil {
			snapErr = err
			return
		}
		cf = checkpointFile{ServeVersion: serveVersion, Info: s.info, Snapshot: snap}
		if s.mon != nil {
			dst := s.mon.State()
			cf.Drift = &dst
		}
		learned = s.learned
	})
	if err == nil && snapErr != nil {
		err = snapErr
	}
	if err != nil {
		// Republish: the stream stays here, alive or sticky-dead.
		sv.mu.Lock()
		sv.streams[id] = s
		if sv.mStreams != nil {
			sv.mStreams.Set(int64(len(sv.streams)))
		}
		sv.mu.Unlock()
		return nil, 0, fmt.Errorf("serve: export %q: %w", id, err)
	}

	body, merr := json.Marshal(&cf)
	if merr != nil {
		sv.mu.Lock()
		sv.streams[id] = s
		if sv.mStreams != nil {
			sv.mStreams.Set(int64(len(sv.streams)))
		}
		sv.mu.Unlock()
		return nil, 0, fmt.Errorf("serve: export %q: %w", id, merr)
	}

	// The envelope is safe; stop the owner and drop every local trace
	// of the stream. The importer owns the state from here on.
	s.close()
	<-s.done
	if sv.store != nil {
		if err := sv.store.Remove(id); err != nil {
			sv.logf("serve: export %s: remove store state: %v", id, err)
		}
	}
	sv.dropStreamMetrics(s)
	return body, learned, nil
}

// ImportStream rebuilds a stream from an ExportStream envelope:
// learner restored bit-identically (learner.RestoreOnline), drift
// monitor continued from the envelope's state, durable store entry
// created fresh on this server. learned is the stream's
// learned-period count from the exporter. It fails with
// errStreamExists if this server already owns the stream ID.
func (sv *Server) ImportStream(envelope []byte, learned int) (StreamInfo, error) {
	var cf checkpointFile
	if err := json.Unmarshal(envelope, &cf); err != nil {
		return StreamInfo{}, fmt.Errorf("serve: import: undecodable envelope: %w", err)
	}
	if cf.ServeVersion != serveVersion {
		return StreamInfo{}, fmt.Errorf("serve: import: envelope version %d, this binary reads %d",
			cf.ServeVersion, serveVersion)
	}
	if cf.Snapshot == nil {
		return StreamInfo{}, errors.New("serve: import: envelope carries no learner snapshot")
	}
	if err := validateID(cf.Info.ID); err != nil {
		return StreamInfo{}, fmt.Errorf("serve: import: %w", err)
	}
	if learned < cf.Snapshot.Stats.Periods {
		learned = cf.Snapshot.Stats.Periods
	}
	s, err := sv.addStream(cf.Info, cf.Snapshot, learned, cf.Drift)
	if err != nil {
		return StreamInfo{}, err
	}
	return s.info, nil
}

// StreamExists reports whether this server currently owns the stream.
func (sv *Server) StreamExists(id string) bool {
	_, ok := sv.stream(id)
	return ok
}
