// Package latency implements end-to-end latency analysis for the
// periodic CAN-based systems of this repository, in two modes:
//
//   - Pessimistic: the holistic style of Tindell & Clark cited by the
//     paper — with no dependency information, every higher-priority
//     task may preempt any task and every higher-priority frame may
//     delay any frame, so worst-case response times include all of
//     them.
//
//   - Dependency-informed: a learned dependency function rules
//     preemptions out. If d(i, j) = ← then j always executes before i
//     within the period (i depends on j), so j cannot preempt i; if
//     d(i, j) = → then j is determined by i and starts only after i
//     completes, so it cannot preempt i either. This is exactly the
//     paper's refinement of the critical path including task Q: the
//     learned implicit dependency between Q and O excludes O's
//     preemption from Q's response time.
//
// All analyses are per-period (critical-instant) bounds: each task and
// frame occurs at most once per period.
package latency

import (
	"fmt"
	"sort"

	"github.com/blackbox-rt/modelgen/internal/can"
	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/model"
)

// newBus wraps can.New for the analysis helpers.
func newBus(bitRate int64) (*can.Bus, error) { return can.New(bitRate) }

// CannotPreempt reports whether the learned dependency function proves
// that task j can never preempt task i: a firm ordering in either
// direction (d(i,j) ∈ {→, ←}) serializes the two tasks within a
// period. With d == nil (no model learned) nothing is excluded.
func CannotPreempt(d *depfunc.DepFunc, i, j string) bool {
	if d == nil {
		return false
	}
	v, err := d.Get(i, j)
	if err != nil {
		return false
	}
	return v == lattice.Fwd || v == lattice.Bwd
}

// Interference returns the tasks that may preempt the given task under
// the (optionally nil) learned dependency function: higher-priority
// tasks on the same ECU, not excluded by a firm ordering. Tasks on
// other ECUs execute in parallel and never preempt.
func Interference(m *model.Model, task string, d *depfunc.DepFunc) ([]string, error) {
	t := m.Task(task)
	if t == nil {
		return nil, fmt.Errorf("latency: unknown task %q", task)
	}
	var out []string
	for _, other := range m.Tasks {
		if other.Name == task || other.ECU != t.ECU || other.Priority <= t.Priority {
			continue
		}
		if CannotPreempt(d, task, other.Name) {
			continue
		}
		out = append(out, other.Name)
	}
	sort.Strings(out)
	return out, nil
}

// TaskResponse bounds the worst-case response time of one activation
// of the task: its own WCET plus the WCET of every task that may
// preempt it (each at most once per period).
func TaskResponse(m *model.Model, task string, d *depfunc.DepFunc) (int64, error) {
	t := m.Task(task)
	if t == nil {
		return 0, fmt.Errorf("latency: unknown task %q", task)
	}
	interferers, err := Interference(m, task, d)
	if err != nil {
		return 0, err
	}
	r := t.WCET
	for _, name := range interferers {
		r += m.Task(name).WCET
	}
	return r, nil
}

// FrameLatency bounds the worst-case queuing-plus-transmission latency
// of the design message with the given CAN identifier: the longest
// lower-priority frame already on the wire (non-preemptive blocking),
// plus one transmission of every higher-priority frame of the model
// (including the sync frame, if any), plus its own transmission time.
func FrameLatency(m *model.Model, canID int, bitRate int64) (int64, error) {
	ids, err := busDurations(m, bitRate)
	if err != nil {
		return 0, err
	}
	own, ok := ids[canID]
	if !ok {
		return 0, fmt.Errorf("latency: no frame with CAN id %d", canID)
	}
	var blocking, interference int64
	for id, dur := range ids {
		switch {
		case id > canID && dur > blocking:
			blocking = dur // lower priority: at most one blocks
		case id < canID:
			interference += dur
		}
	}
	return blocking + interference + own, nil
}

// Path is an end-to-end chain of tasks connected by design messages.
type Path struct {
	Tasks []string
}

// Validate checks that consecutive tasks are connected by design
// edges.
func (p Path) Validate(m *model.Model) error {
	if len(p.Tasks) == 0 {
		return fmt.Errorf("latency: empty path")
	}
	for _, name := range p.Tasks {
		if m.Task(name) == nil {
			return fmt.Errorf("latency: unknown task %q in path", name)
		}
	}
	for i := 0; i+1 < len(p.Tasks); i++ {
		if _, err := edgeBetween(m, p.Tasks[i], p.Tasks[i+1]); err != nil {
			return err
		}
	}
	return nil
}

func edgeBetween(m *model.Model, from, to string) (model.Edge, error) {
	for _, e := range m.OutEdges(from) {
		if e.To == to {
			return e, nil
		}
	}
	return model.Edge{}, fmt.Errorf("latency: no design edge %s -> %s", from, to)
}

// Breakdown itemizes a path latency bound.
type Breakdown struct {
	Items []BreakdownItem
	Total int64
}

// BreakdownItem is one leg of the path: a task response or a frame
// latency.
type BreakdownItem struct {
	Kind  string // "task" or "message"
	Name  string
	Bound int64
	// Excluded lists interference the dependency model ruled out
	// (task legs only).
	Excluded []string
}

// PathLatency bounds the end-to-end latency of the path: the sum of
// each task's response time and each connecting message's frame
// latency. With d == nil the bound is the pessimistic holistic one;
// with a learned dependency function, preemptions contradicted by firm
// orderings are excluded.
func PathLatency(m *model.Model, p Path, d *depfunc.DepFunc, bitRate int64) (*Breakdown, error) {
	if err := p.Validate(m); err != nil {
		return nil, err
	}
	if bitRate == 0 {
		bitRate = 500_000
	}
	bd := &Breakdown{}
	for i, name := range p.Tasks {
		r, err := TaskResponse(m, name, d)
		if err != nil {
			return nil, err
		}
		var excluded []string
		if d != nil {
			pess, err := Interference(m, name, nil)
			if err != nil {
				return nil, err
			}
			inf, err := Interference(m, name, d)
			if err != nil {
				return nil, err
			}
			infSet := map[string]bool{}
			for _, x := range inf {
				infSet[x] = true
			}
			for _, x := range pess {
				if !infSet[x] {
					excluded = append(excluded, x)
				}
			}
		}
		bd.Items = append(bd.Items, BreakdownItem{Kind: "task", Name: name, Bound: r, Excluded: excluded})
		bd.Total += r
		if i+1 < len(p.Tasks) {
			e, err := edgeBetween(m, name, p.Tasks[i+1])
			if err != nil {
				return nil, err
			}
			w, err := FrameLatency(m, e.CANID, bitRate)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s->%s", e.From, e.To)
			bd.Items = append(bd.Items, BreakdownItem{Kind: "message", Name: label, Bound: w})
			bd.Total += w
		}
	}
	return bd, nil
}

// Comparison holds the pessimistic and dependency-informed bounds for
// one path.
type Comparison struct {
	Pessimistic *Breakdown
	Informed    *Breakdown
}

// Improvement returns the absolute and relative latency-bound
// reduction achieved by the learned dependencies.
func (c Comparison) Improvement() (abs int64, rel float64) {
	abs = c.Pessimistic.Total - c.Informed.Total
	if c.Pessimistic.Total > 0 {
		rel = float64(abs) / float64(c.Pessimistic.Total)
	}
	return abs, rel
}

// Compare computes both bounds for the path.
func Compare(m *model.Model, p Path, d *depfunc.DepFunc, bitRate int64) (*Comparison, error) {
	pess, err := PathLatency(m, p, nil, bitRate)
	if err != nil {
		return nil, err
	}
	inf, err := PathLatency(m, p, d, bitRate)
	if err != nil {
		return nil, err
	}
	return &Comparison{Pessimistic: pess, Informed: inf}, nil
}
