// Package trace models timestamped execution traces of periodic
// black-box real-time systems, as logged from a shared communication
// bus (Section 2.1 of Feng et al., DATE 2007).
//
// A trace is a sequence of events: the start or end of a task, or the
// rising or falling edge of a message transmitted on the bus. The bus
// reveals neither the sender nor the receiver of a message. Events are
// grouped into periods; the model of computation guarantees that
//
//   - every task executes at most once per period,
//   - no message crosses a period boundary, and
//   - for any ordered (sender, receiver) pair there is at most one
//     message between them per period.
//
// Times are int64 ticks; the package is agnostic about the unit
// (simulators in this repository use microseconds).
package trace

import (
	"errors"
	"fmt"
	"sort"
)

// Kind enumerates the event kinds observable on the bus log.
type Kind uint8

// Event kinds. PeriodMark is a synthetic event injected by the logging
// device (or the trace segmenter) at each period boundary.
const (
	TaskStart Kind = iota
	TaskEnd
	MsgRise
	MsgFall
	PeriodMark
)

// String returns the lowercase keyword used in the text trace format.
func (k Kind) String() string {
	switch k {
	case TaskStart:
		return "start"
	case TaskEnd:
		return "end"
	case MsgRise:
		return "rise"
	case MsgFall:
		return "fall"
	case PeriodMark:
		return "period"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is a single timestamped observation. Name is a task name for
// TaskStart/TaskEnd, a message occurrence label for MsgRise/MsgFall,
// and ignored for PeriodMark.
type Event struct {
	Time int64
	Kind Kind
	Name string
}

// Interval is a closed time interval [Start, End].
type Interval struct {
	Start, End int64
}

// Contains reports whether t lies within the interval.
func (iv Interval) Contains(t int64) bool { return iv.Start <= t && t <= iv.End }

// Duration returns End - Start.
func (iv Interval) Duration() int64 { return iv.End - iv.Start }

// Message is one message occurrence on the bus: the transmission
// occupies [Rise, Fall].
type Message struct {
	ID   string
	Rise int64
	Fall int64
}

// Period is one instance of the system's execution period: the tasks
// that executed (with their execution intervals) and the message
// occurrences on the bus, in rising-edge order.
type Period struct {
	Index int
	Execs map[string]Interval
	Msgs  []Message
}

// Executed reports whether task ran in this period.
func (p *Period) Executed(task string) bool {
	_, ok := p.Execs[task]
	return ok
}

// ExecutedTasks returns the names of the tasks that ran in this
// period, sorted lexicographically.
func (p *Period) ExecutedTasks() []string {
	out := make([]string, 0, len(p.Execs))
	for t := range p.Execs {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Span returns the interval covering all events of the period, or the
// zero interval if the period is empty.
func (p *Period) Span() Interval {
	first := true
	var span Interval
	grow := func(lo, hi int64) {
		if first {
			span = Interval{lo, hi}
			first = false
			return
		}
		if lo < span.Start {
			span.Start = lo
		}
		if hi > span.End {
			span.End = hi
		}
	}
	for _, iv := range p.Execs {
		grow(iv.Start, iv.End)
	}
	for _, m := range p.Msgs {
		grow(m.Rise, m.Fall)
	}
	return span
}

// Clone returns a deep copy of the period.
func (p *Period) Clone() *Period {
	cp := &Period{Index: p.Index, Execs: make(map[string]Interval, len(p.Execs))}
	for t, iv := range p.Execs {
		cp.Execs[t] = iv
	}
	cp.Msgs = append([]Message(nil), p.Msgs...)
	return cp
}

// Trace is an execution trace: the predefined task set T plus the
// observed periods. In the learning problem each period is one
// instance (Definition 1); their order is irrelevant to the learner
// but preserved here.
type Trace struct {
	Tasks   []string
	Periods []*Period
}

// New returns an empty trace over the given predefined task set.
func New(tasks []string) *Trace {
	return &Trace{Tasks: append([]string(nil), tasks...)}
}

// HasTask reports whether name belongs to the predefined task set.
func (tr *Trace) HasTask(name string) bool {
	for _, t := range tr.Tasks {
		if t == name {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the trace.
func (tr *Trace) Clone() *Trace {
	cp := New(tr.Tasks)
	for _, p := range tr.Periods {
		cp.Periods = append(cp.Periods, p.Clone())
	}
	return cp
}

// Slice returns a shallow trace containing only periods [lo, hi).
func (tr *Trace) Slice(lo, hi int) *Trace {
	if lo < 0 {
		lo = 0
	}
	if hi > len(tr.Periods) {
		hi = len(tr.Periods)
	}
	if lo > hi {
		lo = hi
	}
	return &Trace{Tasks: tr.Tasks, Periods: tr.Periods[lo:hi]}
}

// Stats summarizes a trace with the quantities reported in the paper's
// case study: period count, message occurrences and "event pairs"
// (task executions plus message transmissions, each contributing one
// start/end or rise/fall pair).
type Stats struct {
	Periods        int
	TaskExecutions int
	Messages       int
	EventPairs     int
}

// Stats computes summary statistics for the trace.
func (tr *Trace) Stats() Stats {
	var s Stats
	s.Periods = len(tr.Periods)
	for _, p := range tr.Periods {
		s.TaskExecutions += len(p.Execs)
		s.Messages += len(p.Msgs)
	}
	s.EventPairs = s.TaskExecutions + s.Messages
	return s
}

// Validation errors.
var (
	ErrTruncatedEvent  = errors.New("trace: truncated event line (missing fields)")
	ErrBadTimestamp    = errors.New("trace: unparsable timestamp field")
	ErrUnknownTask     = errors.New("trace: event names task outside the predefined task set")
	ErrDuplicateExec   = errors.New("trace: task executed more than once in a period")
	ErrUnmatchedEvent  = errors.New("trace: unmatched start/end or rise/fall event")
	ErrInvertedEvent   = errors.New("trace: end before start or fall before rise")
	ErrCrossingPeriod  = errors.New("trace: event pair crosses a period boundary")
	ErrDuplicateMsgID  = errors.New("trace: duplicate message occurrence label in a period")
	ErrUnsortedPeriods = errors.New("trace: periods overlap or are out of order")
)

// Validate checks the structural invariants of the model of
// computation: known task names, at most one execution per task per
// period, well-formed intervals and rise-ordered messages with unique
// labels per period.
func (tr *Trace) Validate() error {
	prevEnd := int64(-1 << 62)
	for _, p := range tr.Periods {
		span := p.Span()
		if len(p.Execs)+len(p.Msgs) > 0 {
			if span.Start < prevEnd {
				return fmt.Errorf("%w: period %d starts at %d before previous period ends at %d",
					ErrUnsortedPeriods, p.Index, span.Start, prevEnd)
			}
			prevEnd = span.End
		}
	}
	return tr.validatePeriods()
}

// validatePeriods runs the per-period checks of Validate without the
// global period-ordering check, so front ends that allow per-period
// clock restarts (the text format) can still enforce everything else.
func (tr *Trace) validatePeriods() error {
	known := make(map[string]bool, len(tr.Tasks))
	for _, t := range tr.Tasks {
		known[t] = true
	}
	for _, p := range tr.Periods {
		if err := validateOnePeriod(p, known); err != nil {
			return err
		}
	}
	return nil
}

// validateOnePeriod runs the per-period structural checks of Validate
// on one period, against the known task-name set. It is shared with
// the incremental LineReader, which validates each period as it is
// cut.
func validateOnePeriod(p *Period, known map[string]bool) error {
	for t, iv := range p.Execs {
		if !known[t] {
			return fmt.Errorf("%w: %q in period %d", ErrUnknownTask, t, p.Index)
		}
		if iv.End < iv.Start {
			return fmt.Errorf("%w: task %q in period %d has interval [%d, %d]",
				ErrInvertedEvent, t, p.Index, iv.Start, iv.End)
		}
	}
	seen := make(map[string]bool, len(p.Msgs))
	prevRise := int64(-1 << 62)
	for _, m := range p.Msgs {
		if m.Fall < m.Rise {
			return fmt.Errorf("%w: message %q in period %d has [%d, %d]",
				ErrInvertedEvent, m.ID, p.Index, m.Rise, m.Fall)
		}
		if seen[m.ID] {
			return fmt.Errorf("%w: %q in period %d", ErrDuplicateMsgID, m.ID, p.Index)
		}
		seen[m.ID] = true
		if m.Rise < prevRise {
			return fmt.Errorf("trace: messages in period %d not in rise order", p.Index)
		}
		prevRise = m.Rise
	}
	return nil
}

// FromEvents assembles a trace from a raw event stream over the given
// task set. Events are sorted by time (stably, so the original order
// breaks ties). Periods are delimited by PeriodMark events: each mark
// begins a new period. Events before the first mark form period 0
// unless the stream begins with a mark.
func FromEvents(tasks []string, events []Event) (*Trace, error) {
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })

	tr := New(tasks)
	cur := &Period{Index: 0, Execs: map[string]Interval{}}
	started := false // any non-mark event seen in cur
	openStart := map[string]int64{}
	openRise := map[string]int64{}

	flush := func() error {
		if len(openStart) > 0 || len(openRise) > 0 {
			return fmt.Errorf("%w: period %d has %d open task(s) and %d open message(s)",
				ErrCrossingPeriod, cur.Index, len(openStart), len(openRise))
		}
		if started {
			tr.Periods = append(tr.Periods, cur)
		}
		cur = &Period{Index: cur.Index + 1, Execs: map[string]Interval{}}
		started = false
		return nil
	}

	for _, ev := range evs {
		switch ev.Kind {
		case PeriodMark:
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		case TaskStart:
			if !tr.HasTask(ev.Name) {
				return nil, fmt.Errorf("%w: %q", ErrUnknownTask, ev.Name)
			}
			if _, dup := cur.Execs[ev.Name]; dup {
				return nil, fmt.Errorf("%w: %q in period %d", ErrDuplicateExec, ev.Name, cur.Index)
			}
			if _, open := openStart[ev.Name]; open {
				return nil, fmt.Errorf("%w: double start of %q", ErrUnmatchedEvent, ev.Name)
			}
			openStart[ev.Name] = ev.Time
		case TaskEnd:
			st, ok := openStart[ev.Name]
			if !ok {
				return nil, fmt.Errorf("%w: end of %q without start", ErrUnmatchedEvent, ev.Name)
			}
			delete(openStart, ev.Name)
			cur.Execs[ev.Name] = Interval{Start: st, End: ev.Time}
		case MsgRise:
			if _, open := openRise[ev.Name]; open {
				return nil, fmt.Errorf("%w: double rise of %q", ErrUnmatchedEvent, ev.Name)
			}
			openRise[ev.Name] = ev.Time
		case MsgFall:
			rise, ok := openRise[ev.Name]
			if !ok {
				return nil, fmt.Errorf("%w: fall of %q without rise", ErrUnmatchedEvent, ev.Name)
			}
			delete(openRise, ev.Name)
			cur.Msgs = append(cur.Msgs, Message{ID: ev.Name, Rise: rise, Fall: ev.Time})
		default:
			return nil, fmt.Errorf("trace: invalid event kind %d", ev.Kind)
		}
		started = true
	}
	if err := flush(); err != nil {
		return nil, err
	}
	// Reindex periods densely from zero.
	for i, p := range tr.Periods {
		p.Index = i
	}
	sortMessages(tr)
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// FromEventsPeriodic assembles a trace from an unmarked event stream by
// segmenting it into fixed-length periods of duration periodLen
// starting at time origin. Every event pair must fall entirely within
// one period.
func FromEventsPeriodic(tasks []string, events []Event, origin, periodLen int64) (*Trace, error) {
	if periodLen <= 0 {
		return nil, fmt.Errorf("trace: period length must be positive, got %d", periodLen)
	}
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	var marked []Event
	nextBoundary := origin
	for _, ev := range evs {
		if ev.Kind == PeriodMark {
			continue // recompute marks from the grid
		}
		for ev.Time >= nextBoundary {
			marked = append(marked, Event{Time: nextBoundary, Kind: PeriodMark})
			nextBoundary += periodLen
		}
		marked = append(marked, ev)
	}
	return FromEvents(tasks, marked)
}

// Events flattens the trace back into a time-sorted event stream with
// PeriodMark events at each period boundary (including before the
// first period).
func (tr *Trace) Events() []Event {
	var out []Event
	for _, p := range tr.Periods {
		span := p.Span()
		out = append(out, Event{Time: span.Start, Kind: PeriodMark})
		for t, iv := range p.Execs {
			out = append(out, Event{Time: iv.Start, Kind: TaskStart, Name: t})
			out = append(out, Event{Time: iv.End, Kind: TaskEnd, Name: t})
		}
		for _, m := range p.Msgs {
			out = append(out, Event{Time: m.Rise, Kind: MsgRise, Name: m.ID})
			out = append(out, Event{Time: m.Fall, Kind: MsgFall, Name: m.ID})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return eventRank(out[i]) < eventRank(out[j])
	})
	return out
}

// eventRank breaks timestamp ties so that period marks come first,
// then ends/falls (completions), then starts/rises.
func eventRank(ev Event) int {
	switch ev.Kind {
	case PeriodMark:
		return 0
	case TaskEnd, MsgFall:
		return 1
	default:
		return 2
	}
}

func sortMessages(tr *Trace) {
	for _, p := range tr.Periods {
		sort.SliceStable(p.Msgs, func(i, j int) bool { return p.Msgs[i].Rise < p.Msgs[j].Rise })
	}
}

// Builder incrementally constructs a trace period by period. It is the
// convenient front end used by tests, examples and the simulator.
type Builder struct {
	tr  *Trace
	cur *Period
	err error
}

// NewBuilder returns a Builder over the given task set.
func NewBuilder(tasks []string) *Builder {
	return &Builder{tr: New(tasks)}
}

// StartPeriod begins a new period; any open period is closed first.
func (b *Builder) StartPeriod() *Builder {
	b.closePeriod()
	b.cur = &Period{Index: len(b.tr.Periods), Execs: map[string]Interval{}}
	return b
}

func (b *Builder) closePeriod() {
	if b.cur != nil {
		sort.SliceStable(b.cur.Msgs, func(i, j int) bool { return b.cur.Msgs[i].Rise < b.cur.Msgs[j].Rise })
		b.tr.Periods = append(b.tr.Periods, b.cur)
		b.cur = nil
	}
}

// Exec records an execution of task over [start, end] in the current
// period.
func (b *Builder) Exec(task string, start, end int64) *Builder {
	if b.err != nil {
		return b
	}
	if b.cur == nil {
		b.StartPeriod()
	}
	if !b.tr.HasTask(task) {
		b.err = fmt.Errorf("%w: %q", ErrUnknownTask, task)
		return b
	}
	if _, dup := b.cur.Execs[task]; dup {
		b.err = fmt.Errorf("%w: %q in period %d", ErrDuplicateExec, task, b.cur.Index)
		return b
	}
	b.cur.Execs[task] = Interval{Start: start, End: end}
	return b
}

// Msg records a message occurrence with transmission interval
// [rise, fall] in the current period.
func (b *Builder) Msg(id string, rise, fall int64) *Builder {
	if b.err != nil {
		return b
	}
	if b.cur == nil {
		b.StartPeriod()
	}
	b.cur.Msgs = append(b.cur.Msgs, Message{ID: id, Rise: rise, Fall: fall})
	return b
}

// Build closes the current period, validates and returns the trace.
func (b *Builder) Build() (*Trace, error) {
	if b.err != nil {
		return nil, b.err
	}
	b.closePeriod()
	if err := b.tr.Validate(); err != nil {
		return nil, err
	}
	return b.tr, nil
}

// MustBuild is Build for tests and examples with known-good input; it
// panics on error.
func (b *Builder) MustBuild() *Trace {
	tr, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tr
}
