package depfunc

import (
	"math/rand"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/lattice"
)

var allValues = []lattice.Value{
	lattice.Par, lattice.Fwd, lattice.Bwd, lattice.Bi,
	lattice.FwdMaybe, lattice.BwdMaybe, lattice.BiMaybe,
}

// checkFP asserts the fingerprint invariant: the incrementally
// maintained fp always equals a from-scratch recomputation.
func checkFP(t *testing.T, d *DepFunc, at string) {
	t.Helper()
	if got, want := d.Fingerprint(), d.freshFingerprint(); got != want {
		t.Fatalf("%s: incremental fingerprint %#x, fresh %#x", at, got, want)
	}
}

// TestFingerprintIncremental drives a dependency function through a
// long random mutation sequence (Set, JoinAt, Clone, JoinWith, Meet,
// RelaxViolations) and verifies after every step that the incremental
// fingerprint matches a full recomputation.
func TestFingerprintIncremental(t *testing.T) {
	ts := MustTaskSet("t1", "t2", "t3", "t4", "t5")
	rng := rand.New(rand.NewSource(42))
	d := Bottom(ts)
	checkFP(t, d, "bottom")
	other := Top(ts)
	checkFP(t, other, "top")
	n := ts.Len()
	randCell := func() (int, int) {
		for {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				return i, j
			}
		}
	}
	for step := 0; step < 2000; step++ {
		switch rng.Intn(6) {
		case 0:
			i, j := randCell()
			d.Set(i, j, allValues[rng.Intn(len(allValues))])
			checkFP(t, d, "Set")
		case 1:
			i, j := randCell()
			d.JoinAt(i, j, allValues[rng.Intn(len(allValues))])
			checkFP(t, d, "JoinAt")
		case 2:
			d = d.Clone()
			checkFP(t, d, "Clone")
		case 3:
			d.JoinWith(other)
			checkFP(t, d, "JoinWith")
		case 4:
			d = d.Meet(other)
			checkFP(t, d, "Meet")
		case 5:
			executed := make([]bool, n)
			for i := range executed {
				executed[i] = rng.Intn(2) == 0
			}
			d.RelaxViolations(func(i int) bool { return executed[i] })
			checkFP(t, d, "RelaxViolations")
		}
		// Mutate the join/meet partner too, so the pairings vary.
		if step%7 == 0 {
			i, j := randCell()
			other.Set(i, j, allValues[rng.Intn(len(allValues))])
			checkFP(t, other, "partner Set")
		}
	}
}

// TestFingerprintParseTable: parsing the paper's table rendering
// establishes the invariant too.
func TestFingerprintParseTable(t *testing.T) {
	d := Bottom(MustTaskSet("t1", "t2", "t3"))
	d.Set(0, 1, lattice.Fwd)
	d.Set(2, 0, lattice.BwdMaybe)
	back, err := ParseTable(d.Table())
	if err != nil {
		t.Fatal(err)
	}
	checkFP(t, back, "ParseTable")
	if back.Fingerprint() != d.Fingerprint() {
		t.Errorf("round-tripped fingerprint %#x != original %#x", back.Fingerprint(), d.Fingerprint())
	}
}

// TestFingerprintSeparates: the fingerprint must separate every pair
// of distinct single-entry tables — the collision-free regime the
// dedup fast path lives in.
func TestFingerprintSeparates(t *testing.T) {
	ts := MustTaskSet("t1", "t2", "t3", "t4")
	seen := map[uint64]string{}
	n := ts.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			for _, v := range allValues {
				d := Bottom(ts)
				d.Set(i, j, v)
				fp := d.Fingerprint()
				key := d.Key()
				if prev, ok := seen[fp]; ok && prev != key {
					t.Fatalf("fingerprint collision: %q and %q both map to %#x", prev, key, fp)
				}
				seen[fp] = key
			}
		}
	}
}

// TestFingerprintEqualConsistency: Equal and fingerprint agree on a
// random sample (unequal fingerprints always mean unequal tables; the
// Equal fast path must never produce a false negative).
func TestFingerprintEqualConsistency(t *testing.T) {
	ts := MustTaskSet("t1", "t2", "t3", "t4")
	rng := rand.New(rand.NewSource(7))
	n := ts.Len()
	random := func() *DepFunc {
		d := Bottom(ts)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					d.Set(i, j, allValues[rng.Intn(len(allValues))])
				}
			}
		}
		return d
	}
	for trial := 0; trial < 500; trial++ {
		a, b := random(), random()
		if a.Equal(b) != (a.Key() == b.Key()) {
			t.Fatalf("Equal diverges from canonical keys:\n%s\n%s", a.Table(), b.Table())
		}
		cp := a.Clone()
		if !a.Equal(cp) || a.Fingerprint() != cp.Fingerprint() {
			t.Fatal("clone not equal to original")
		}
	}
}

// TestPairFingerprintDistinct: pair fingerprints distinguish ordered
// pairs, including the transpose.
func TestPairFingerprintDistinct(t *testing.T) {
	seen := map[uint64]Pair{}
	for s := 0; s < 20; s++ {
		for r := 0; r < 20; r++ {
			if s == r {
				continue
			}
			p := Pair{S: s, R: r}
			fp := p.Fingerprint()
			if prev, ok := seen[fp]; ok {
				t.Fatalf("pair fingerprint collision: %+v and %+v", prev, p)
			}
			seen[fp] = p
		}
	}
}

// TestFingerprintZeroAlloc: maintaining and reading the fingerprint
// allocates nothing — the whole point of replacing Key() strings on
// the hot path (mirrors the learner's TestNopObserverZeroAlloc).
func TestFingerprintZeroAlloc(t *testing.T) {
	ts := MustTaskSet("t1", "t2", "t3", "t4")
	d := Bottom(ts)
	var sink uint64
	allocs := testing.AllocsPerRun(100, func() {
		d.Set(0, 1, lattice.Fwd)
		d.JoinAt(1, 2, lattice.BwdMaybe)
		sink = d.Fingerprint()
		d.Set(0, 1, lattice.Par)
		d.Set(1, 2, lattice.Par)
	})
	_ = sink
	if allocs != 0 {
		t.Errorf("fingerprint maintenance allocates %.0f per run, want 0", allocs)
	}
}

// benchTable returns a representative mid-run dependency function
// over t tasks.
func benchTable(t int) *DepFunc {
	names := make([]string, t)
	for i := range names {
		names[i] = "t" + string(rune('0'+i%10)) + string(rune('a'+i/10))
	}
	ts := MustTaskSet(names...)
	d := Bottom(ts)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < t; i++ {
		for j := 0; j < t; j++ {
			if i != j && rng.Intn(3) == 0 {
				d.Set(i, j, allValues[1+rng.Intn(len(allValues)-1)])
			}
		}
	}
	return d
}

// BenchmarkKey vs BenchmarkFingerprint: the dedup-key cost the engine
// refactor removed from the per-child hot path. Key builds an O(t²)
// string; Fingerprint reads a cached word.
func BenchmarkKey(b *testing.B) {
	d := benchTable(18)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(d.Key()) == 0 {
			b.Fatal("empty key")
		}
	}
}

func BenchmarkFingerprint(b *testing.B) {
	d := benchTable(18)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= d.Fingerprint()
	}
	_ = sink
}

// BenchmarkSetWithFingerprint measures the incremental-maintenance
// overhead Set pays to keep the fingerprint current.
func BenchmarkSetWithFingerprint(b *testing.B) {
	d := benchTable(18)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Set(0, 1, allValues[i%len(allValues)])
	}
}
