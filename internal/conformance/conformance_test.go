package conformance

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// TestFigure1Truth pins the enumerated ground truth of the paper's
// Figure-1 design: the disjunction t1 sends to t2 and/or t3 each
// period (both edges conditional from t1's side), while t2 fires only
// when t1 chose it — so from t2's side the receive from t1 and the
// send to t4 are both firm. Pairs that never communicate directly
// (t1–t4, t2–t3) are independent.
func TestFigure1Truth(t *testing.T) {
	truth, ok := TruthFromModel(model.Figure1(), maxTruthChoiceBits)
	if !ok {
		t.Fatal("TruthFromModel rejected Figure 1")
	}
	ts := truth.TaskSet()
	at := func(a, b string) lattice.Value { return truth.At(ts.Index(a), ts.Index(b)) }
	want := map[[2]string]lattice.Value{
		{"t1", "t2"}: lattice.FwdMaybe,
		{"t1", "t3"}: lattice.FwdMaybe,
		{"t1", "t4"}: lattice.Par,
		{"t2", "t1"}: lattice.Bwd,
		{"t2", "t3"}: lattice.Par,
		{"t2", "t4"}: lattice.Fwd,
		{"t3", "t4"}: lattice.Fwd,
		{"t4", "t2"}: lattice.BwdMaybe,
		{"t4", "t1"}: lattice.Par,
	}
	for pair, w := range want {
		if got := at(pair[0], pair[1]); got != w {
			t.Errorf("truth(%s,%s) = %v, want %v", pair[0], pair[1], got, w)
		}
	}
}

func TestTruthRejectsSyncModels(t *testing.T) {
	if _, ok := TruthFromModel(model.GMStyleLite(), maxTruthChoiceBits); ok {
		t.Fatal("TruthFromModel accepted a model with sync gating; broadcast frames have no point-to-point truth")
	}
}

// TestCorpusRoundTrip generates the golden corpus, writes it, reloads
// it and checks the reload is equivalent.
func TestCorpusRoundTrip(t *testing.T) {
	c, err := GenerateCorpus()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(c.Entries) {
		t.Fatalf("reloaded %d entries, wrote %d", len(got.Entries), len(c.Entries))
	}
	byName := map[string]*Entry{}
	for _, e := range got.Entries {
		byName[e.Name] = e
	}
	for _, e := range c.Entries {
		r, ok := byName[e.Name]
		if !ok {
			t.Fatalf("entry %s missing after round trip", e.Name)
		}
		if r.Exact != e.Exact || r.Thm2 != e.Thm2 || len(r.Bounds) != len(e.Bounds) {
			t.Errorf("entry %s manifest changed across round trip", e.Name)
		}
		if len(r.Trace.Periods) != len(e.Trace.Periods) {
			t.Errorf("entry %s: %d periods after reload, want %d", e.Name, len(r.Trace.Periods), len(e.Trace.Periods))
		}
		if (r.Truth == nil) != (e.Truth == nil) {
			t.Errorf("entry %s: truth presence changed across round trip", e.Name)
		} else if r.Truth != nil && !r.Truth.Equal(e.Truth) {
			t.Errorf("entry %s: truth changed across round trip", e.Name)
		}
	}
}

// TestRunGeneratedCorpus is the package's main empirical check: every
// oracle must pass (or be explicitly skipped) on the generated golden
// corpus.
func TestRunGeneratedCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run is not short")
	}
	c, err := GenerateCorpus()
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(c, nil)
	if !rep.Ok() {
		raw, _ := json.MarshalIndent(rep, "", "  ")
		t.Fatalf("conformance run failed:\n%s", raw)
	}
	if rep.Passed == 0 {
		t.Fatal("no oracle passed; the run was vacuous")
	}
	for _, er := range rep.Entries {
		for _, res := range er.Results {
			t.Logf("%s/%s: %s (%dms)", er.Name, res.Oracle, res.Status, res.ElapsedMS)
		}
	}
}

// TestRunCommittedCorpus runs the oracles over the corpus as committed
// under testdata/corpus, guarding against drift between the generator
// and the checked-in files.
func TestRunCommittedCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run is not short")
	}
	dir := filepath.Join("..", "..", "testdata", "corpus")
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		t.Skip("no committed corpus (run `bbconform -gen` to create one)")
	}
	c, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(c, nil)
	if !rep.Ok() {
		raw, _ := json.MarshalIndent(rep, "", "  ")
		t.Fatalf("conformance run failed on committed corpus:\n%s", raw)
	}
}

func TestSmoke(t *testing.T) {
	if err := Smoke(); err != nil {
		t.Fatal(err)
	}
}

func TestLatticeLaws(t *testing.T) {
	if vs := LatticeLaws(); len(vs) > 0 {
		t.Fatalf("lattice laws violated: %v", vs)
	}
}

func TestFingerprintKeyAgreement(t *testing.T) {
	if vs := FingerprintKeyAgreement(); len(vs) > 0 {
		t.Fatalf("fingerprint/key disagreement: %v", vs)
	}
}

func TestLoadCorpusRejectsVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCorpus(dir)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version mismatch error, got %v", err)
	}
}

func TestLoadCorpusRejectsNameMismatch(t *testing.T) {
	dir := t.TempDir()
	c := &Corpus{Version: CorpusVersion, Entries: []*Entry{{
		Manifest: Manifest{Name: "good", Bounds: []int{2}},
		Trace:    trace.PaperFigure2(),
	}}}
	if err := WriteCorpus(dir, c); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, "good"), filepath.Join(dir, "renamed")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil {
		t.Fatal("want manifest/directory name mismatch error, got nil")
	}
}

func TestLoadCorpusRejectsThm2WithoutTruth(t *testing.T) {
	dir := t.TempDir()
	c := &Corpus{Version: CorpusVersion, Entries: []*Entry{{
		Manifest: Manifest{Name: "bad", Bounds: []int{2}, Exact: true, Thm2: true},
		Trace:    trace.PaperFigure2(),
	}}}
	if err := WriteCorpus(dir, c); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCorpus(dir)
	if err == nil || !strings.Contains(err.Error(), "thm2") {
		t.Fatalf("want thm2-requires-truth error, got %v", err)
	}
}

// TestThm2CatchesDemotedTruth duplicates the smoke fault injection at
// the test level so `go test` alone exercises mutation detection.
func TestThm2CatchesDemotedTruth(t *testing.T) {
	truth, ok := TruthFromModel(model.Figure1(), maxTruthChoiceBits)
	if !ok {
		t.Fatal("TruthFromModel rejected Figure 1")
	}
	demoted := truth.Clone()
	ts := demoted.TaskSet()
	demoted.Set(ts.Index("t1"), ts.Index("t2"), lattice.Par)
	vs, err := Thm2Soundness(trace.PaperFigure2(), demoted, depfunc.CandidatePolicy{}, MaxExactHypotheses)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("thm2 oracle missed a demoted ground-truth entry")
	}
}
