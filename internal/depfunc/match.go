package depfunc

import (
	"fmt"
	"sort"

	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// Match implements the matching function M : H × I → boolean
// (Definition 3). A dependency function d matches a period i iff
//
//  1. every unconditional entry is respected: d(a,b) ∈ {→, ←, ↔}
//     implies that whenever a executed in the period, b executed too;
//     and
//  2. the period's messages can be explained: there exists an
//     assignment of each message occurrence to a timing-feasible
//     (sender, receiver) pair such that distinct messages use distinct
//     ordered pairs (at most one message per pair per period) and the
//     hypothesis admits a message on that pair, i.e. → ⊑ d(s,r) and
//     ← ⊑ d(r,s).
//
// Condition 2 is a constrained bipartite matching; Match solves it by
// backtracking over messages in ascending candidate-count order.
func Match(d *DepFunc, p *trace.Period, pol CandidatePolicy) bool {
	return MatchExplain(d, p, pol) == nil
}

// MatchExplain is Match with a diagnosis: it returns nil if d matches
// the period, and otherwise an error describing the first violated
// condition.
func MatchExplain(d *DepFunc, p *trace.Period, pol CandidatePolicy) error {
	ts := d.ts
	executed := make([]bool, ts.Len())
	for name := range p.Execs {
		if i := ts.Index(name); i >= 0 {
			executed[i] = true
		}
	}
	// Condition 1: unconditional dependencies.
	var violation error
	d.Entries(func(i, j int, v lattice.Value) {
		if violation == nil && lattice.HasExecConstraint(v) && executed[i] && !executed[j] {
			violation = fmt.Errorf("depfunc: period %d: d(%s,%s)=%s but %s executed without %s",
				p.Index, ts.Name(i), ts.Name(j), v, ts.Name(i), ts.Name(j))
		}
	})
	if violation != nil {
		return violation
	}
	// Condition 2: message assignment.
	cands := Candidates(p, ts, pol)
	allowed := make([][]Pair, len(cands))
	order := make([]int, len(cands))
	for mi, pairs := range cands {
		order[mi] = mi
		for _, pr := range pairs {
			if lattice.AllowsOutgoingMessage(d.At(pr.S, pr.R)) &&
				lattice.AllowsIncomingMessage(d.At(pr.R, pr.S)) {
				allowed[mi] = append(allowed[mi], pr)
			}
		}
		if len(allowed[mi]) == 0 {
			return fmt.Errorf("depfunc: period %d: message %q has no admissible sender/receiver pair",
				p.Index, p.Msgs[mi].ID)
		}
	}
	// Most-constrained message first.
	sort.SliceStable(order, func(a, b int) bool { return len(allowed[order[a]]) < len(allowed[order[b]]) })
	used := make(map[Pair]bool, len(cands))
	if !assign(order, allowed, used, 0) {
		return fmt.Errorf("depfunc: period %d: no consistent assignment of %d messages to sender/receiver pairs",
			p.Index, len(p.Msgs))
	}
	return nil
}

func assign(order []int, allowed [][]Pair, used map[Pair]bool, k int) bool {
	if k == len(order) {
		return true
	}
	for _, pr := range allowed[order[k]] {
		if used[pr] {
			continue
		}
		used[pr] = true
		if assign(order, allowed, used, k+1) {
			return true
		}
		delete(used, pr)
	}
	return false
}

// MatchTrace reports whether d matches every period of the trace
// (M(h, I) in the notation of Definition 3). It returns the index of
// the first period that fails, or -1 if all match.
func MatchTrace(d *DepFunc, tr *trace.Trace, pol CandidatePolicy) (bool, int) {
	for i, p := range tr.Periods {
		if !Match(d, p, pol) {
			return false, i
		}
	}
	return true, -1
}
